// DHT ring geometry: node IDs on the 2^512 circle and key ownership.
//
// The node responsible for key k is the *successor* of k — the node with
// the smallest ID >= k, wrapping around (paper §1: "the node whose ID is
// the immediate successor of its key"). A block is replicated on the r
// immediate successors of its key (§3, D2-Store). Load balancing moves
// node IDs (leave + rejoin), which this class supports directly.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "common/key.h"

namespace d2::dht {

class Ring {
 public:
  /// Adds a node with the given ID. IDs must be unique; the node index
  /// must not already be present.
  void add(int node, const Key& id);

  /// Removes a node from the ring.
  void remove(int node);

  /// Atomically moves a node to a new ID (leave + rejoin).
  void move(int node, const Key& new_id);

  bool contains(int node) const { return ids_.count(node) > 0; }
  bool id_taken(const Key& id) const { return by_id_.count(id) > 0; }

  std::size_t size() const { return by_id_.size(); }
  bool empty() const { return by_id_.empty(); }

  const Key& id_of(int node) const;

  /// The node responsible for `k` (successor of k). Requires non-empty.
  int owner(const Key& k) const;

  /// The r nodes succeeding `k` in clockwise order starting at the owner.
  /// Returns fewer than r if the ring is smaller than r.
  std::vector<int> replica_set(const Key& k, int r) const;

  /// Allocation-free variant: clears `out` and fills it with the replica
  /// set, reusing its capacity (the hot path in System's put/reassign).
  void replica_set(const Key& k, int r, std::vector<int>& out) const;

  /// Ring neighbours of a node.
  int successor(int node) const;
  int predecessor(int node) const;

  /// The node `steps` positions clockwise of `node` (0 = itself).
  int nth_clockwise(int node, std::size_t steps) const;

  /// The half-open key arc (pred_id, id] owned by `node`. With a single
  /// node the arc is the whole ring.
  std::pair<Key, Key> owned_arc(int node) const;

  /// True iff `node` is responsible for key `k` as primary.
  bool owns(int node, const Key& k) const;

  /// All nodes in clockwise ID order.
  std::vector<int> nodes_in_order() const;

  /// Clockwise rank distance from node a to node b (0 if a == b).
  std::size_t rank_distance(int a, int b) const;

  /// Full-structure audit; throws InvariantError naming the violated
  /// invariant. Checks that by_id_ and ids_ are inverse bijections and
  /// that successor/predecessor/owner/replica_set agree with the clockwise
  /// ID order. O(n log n); wired into add/remove/move in paranoid builds
  /// and callable from tests in any build.
  void check_invariants() const;

 private:
  /// Corruption-injection hook for tests (tests/test_invariants.cc).
  friend struct RingTestPeer;

  std::map<Key, int> by_id_;
  /// Node -> ID lookup only; never iterated (iteration would be
  /// hash-order, i.e. nondeterministic across platforms).
  std::unordered_map<int, Key> ids_;  // d2-lint: allow(unordered-container)

  std::map<Key, int>::const_iterator iter_of(int node) const;
};

}  // namespace d2::dht
