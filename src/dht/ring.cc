#include "dht/ring.h"

#include "common/assert.h"

namespace d2::dht {

void Ring::add(int node, const Key& id) {
  D2_REQUIRE_MSG(!contains(node), "node already on ring");
  D2_REQUIRE_MSG(!id_taken(id), "ID collision");
  by_id_.emplace(id, node);
  ids_.emplace(node, id);
}

void Ring::remove(int node) {
  auto it = ids_.find(node);
  D2_REQUIRE_MSG(it != ids_.end(), "node not on ring");
  by_id_.erase(it->second);
  ids_.erase(it);
}

void Ring::move(int node, const Key& new_id) {
  remove(node);
  add(node, new_id);
}

const Key& Ring::id_of(int node) const {
  auto it = ids_.find(node);
  D2_REQUIRE_MSG(it != ids_.end(), "node not on ring");
  return it->second;
}

int Ring::owner(const Key& k) const {
  D2_REQUIRE(!empty());
  auto it = by_id_.lower_bound(k);  // smallest id >= k
  if (it == by_id_.end()) it = by_id_.begin();
  return it->second;
}

std::vector<int> Ring::replica_set(const Key& k, int r) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(r));
  replica_set(k, r, out);
  return out;
}

void Ring::replica_set(const Key& k, int r, std::vector<int>& out) const {
  D2_REQUIRE(!empty());
  D2_REQUIRE(r > 0);
  out.clear();
  auto it = by_id_.lower_bound(k);
  if (it == by_id_.end()) it = by_id_.begin();
  const std::size_t n = by_id_.size();
  for (std::size_t i = 0; i < std::min<std::size_t>(static_cast<std::size_t>(r), n);
       ++i) {
    out.push_back(it->second);
    ++it;
    if (it == by_id_.end()) it = by_id_.begin();
  }
}

std::map<Key, int>::const_iterator Ring::iter_of(int node) const {
  auto idit = ids_.find(node);
  D2_REQUIRE_MSG(idit != ids_.end(), "node not on ring");
  auto it = by_id_.find(idit->second);
  D2_ASSERT(it != by_id_.end());
  return it;
}

int Ring::successor(int node) const {
  auto it = iter_of(node);
  ++it;
  if (it == by_id_.end()) it = by_id_.begin();
  return it->second;
}

int Ring::predecessor(int node) const {
  auto it = iter_of(node);
  if (it == by_id_.begin()) it = by_id_.end();
  --it;
  return it->second;
}

int Ring::nth_clockwise(int node, std::size_t steps) const {
  auto it = iter_of(node);
  steps %= by_id_.size();
  for (std::size_t i = 0; i < steps; ++i) {
    ++it;
    if (it == by_id_.end()) it = by_id_.begin();
  }
  return it->second;
}

std::pair<Key, Key> Ring::owned_arc(int node) const {
  const Key& id = id_of(node);
  const Key& pred_id = id_of(predecessor(node));
  return {pred_id, id};
}

bool Ring::owns(int node, const Key& k) const {
  if (by_id_.size() == 1) return contains(node);
  auto [from, to] = owned_arc(node);
  return Key::in_arc(k, from, to);
}

std::vector<int> Ring::nodes_in_order() const {
  std::vector<int> out;
  out.reserve(by_id_.size());
  for (const auto& [id, node] : by_id_) out.push_back(node);
  return out;
}

std::size_t Ring::rank_distance(int a, int b) const {
  auto it = iter_of(a);
  std::size_t steps = 0;
  while (it->second != b) {
    ++it;
    if (it == by_id_.end()) it = by_id_.begin();
    ++steps;
    D2_ASSERT_MSG(steps <= by_id_.size(), "node b not on ring");
  }
  return steps;
}

}  // namespace d2::dht
