#include "dht/ring.h"

#include <algorithm>

#include "common/assert.h"

namespace d2::dht {

void Ring::add(int node, const Key& id) {
  D2_REQUIRE_MSG(!contains(node), "node already on ring");
  D2_REQUIRE_MSG(!id_taken(id), "ID collision");
  by_id_.emplace(id, node);
  ids_.emplace(node, id);
  D2_PARANOID_AUDIT(check_invariants());
}

void Ring::remove(int node) {
  auto it = ids_.find(node);
  D2_REQUIRE_MSG(it != ids_.end(), "node not on ring");
  by_id_.erase(it->second);
  ids_.erase(it);
  D2_PARANOID_AUDIT(check_invariants());
}

// Preconditions (membership, ID uniqueness) are enforced by remove() and
// add().  d2-lint: allow(unguarded-mutator)
void Ring::move(int node, const Key& new_id) {
  remove(node);
  add(node, new_id);
}

const Key& Ring::id_of(int node) const {
  auto it = ids_.find(node);
  D2_REQUIRE_MSG(it != ids_.end(), "node not on ring");
  return it->second;
}

int Ring::owner(const Key& k) const {
  D2_REQUIRE(!empty());
  auto it = by_id_.lower_bound(k);  // smallest id >= k
  if (it == by_id_.end()) it = by_id_.begin();
  return it->second;
}

std::vector<int> Ring::replica_set(const Key& k, int r) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(r));
  replica_set(k, r, out);
  return out;
}

void Ring::replica_set(const Key& k, int r, std::vector<int>& out) const {
  D2_REQUIRE(!empty());
  D2_REQUIRE(r > 0);
  out.clear();
  auto it = by_id_.lower_bound(k);
  if (it == by_id_.end()) it = by_id_.begin();
  const std::size_t n = by_id_.size();
  for (std::size_t i = 0; i < std::min<std::size_t>(static_cast<std::size_t>(r), n);
       ++i) {
    out.push_back(it->second);
    ++it;
    if (it == by_id_.end()) it = by_id_.begin();
  }
}

std::map<Key, int>::const_iterator Ring::iter_of(int node) const {
  auto idit = ids_.find(node);
  D2_REQUIRE_MSG(idit != ids_.end(), "node not on ring");
  auto it = by_id_.find(idit->second);
  D2_ASSERT(it != by_id_.end());
  return it;
}

int Ring::successor(int node) const {
  auto it = iter_of(node);
  ++it;
  if (it == by_id_.end()) it = by_id_.begin();
  return it->second;
}

int Ring::predecessor(int node) const {
  auto it = iter_of(node);
  if (it == by_id_.begin()) it = by_id_.end();
  --it;
  return it->second;
}

int Ring::nth_clockwise(int node, std::size_t steps) const {
  auto it = iter_of(node);
  steps %= by_id_.size();
  for (std::size_t i = 0; i < steps; ++i) {
    ++it;
    if (it == by_id_.end()) it = by_id_.begin();
  }
  return it->second;
}

std::pair<Key, Key> Ring::owned_arc(int node) const {
  const Key& id = id_of(node);
  const Key& pred_id = id_of(predecessor(node));
  return {pred_id, id};
}

bool Ring::owns(int node, const Key& k) const {
  if (by_id_.size() == 1) return contains(node);
  auto [from, to] = owned_arc(node);
  return Key::in_arc(k, from, to);
}

std::vector<int> Ring::nodes_in_order() const {
  std::vector<int> out;
  out.reserve(by_id_.size());
  for (const auto& [id, node] : by_id_) out.push_back(node);
  return out;
}

void Ring::check_invariants() const {
  D2_ASSERT_MSG(by_id_.size() == ids_.size(),
                "ring: id maps disagree in size");
  for (const auto& [id, node] : by_id_) {
    const auto it = ids_.find(node);
    D2_ASSERT_MSG(it != ids_.end() && it->second == id,
                  "ring: id maps are not inverse bijections");
  }
  if (by_id_.empty()) return;

  // Successor / owner / replica-set consistency against clockwise order.
  const std::vector<int> order = nodes_in_order();
  const int r = static_cast<int>(std::min<std::size_t>(order.size(), 3));
  std::vector<int> replicas;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int node = order[i];
    const int succ = order[(i + 1) % order.size()];
    D2_ASSERT_MSG(successor(node) == succ,
                  "ring: successor disagrees with clockwise order");
    D2_ASSERT_MSG(predecessor(succ) == node,
                  "ring: predecessor is not successor's inverse");
    D2_ASSERT_MSG(owner(id_of(node)) == node,
                  "ring: node does not own its own ID");
    replica_set(id_of(node), r, replicas);
    D2_ASSERT_MSG(replicas.size() == static_cast<std::size_t>(r),
                  "ring: replica set has wrong cardinality");
    for (int j = 0; j < r; ++j) {
      D2_ASSERT_MSG(
          replicas[static_cast<std::size_t>(j)] ==
              order[(i + static_cast<std::size_t>(j)) % order.size()],
          "ring: replica set disagrees with successor chain");
    }
  }
}

std::size_t Ring::rank_distance(int a, int b) const {
  auto it = iter_of(a);
  std::size_t steps = 0;
  while (it->second != b) {
    ++it;
    if (it == by_id_.end()) it = by_id_.begin();
    ++steps;
    D2_ASSERT_MSG(steps <= by_id_.size(), "node b not on ring");
  }
  return steps;
}

}  // namespace d2::dht
