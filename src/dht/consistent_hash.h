// Consistent-hashing helpers for the traditional baselines.
//
// The traditional and traditional-file DHTs assign uniformly random keys:
// each block (or file) key is a hash of its name, and node IDs are random
// (paper §1, §7). Keys here are 64 bytes, produced by expanding SHA-1
// digests so the full key space is covered uniformly.
#pragma once

#include <string_view>

#include "common/key.h"
#include "common/rng.h"

namespace d2::dht {

/// 64-byte key derived from hashing `name` (uniform over the key space).
Key hashed_key(std::string_view name);

/// Uniformly random node ID.
Key random_node_id(Rng& rng);

}  // namespace d2::dht
