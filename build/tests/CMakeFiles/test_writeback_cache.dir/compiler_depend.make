# Empty compiler generated dependencies file for test_writeback_cache.
# This may be replaced when dependencies are built.
