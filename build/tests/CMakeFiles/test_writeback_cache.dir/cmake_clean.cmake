file(REMOVE_RECURSE
  "CMakeFiles/test_writeback_cache.dir/test_writeback_cache.cc.o"
  "CMakeFiles/test_writeback_cache.dir/test_writeback_cache.cc.o.d"
  "test_writeback_cache"
  "test_writeback_cache.pdb"
  "test_writeback_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_writeback_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
