file(REMOVE_RECURSE
  "CMakeFiles/test_consistent_hash.dir/test_consistent_hash.cc.o"
  "CMakeFiles/test_consistent_hash.dir/test_consistent_hash.cc.o.d"
  "test_consistent_hash"
  "test_consistent_hash.pdb"
  "test_consistent_hash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consistent_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
