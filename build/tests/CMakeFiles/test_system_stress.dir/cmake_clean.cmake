file(REMOVE_RECURSE
  "CMakeFiles/test_system_stress.dir/test_system_stress.cc.o"
  "CMakeFiles/test_system_stress.dir/test_system_stress.cc.o.d"
  "test_system_stress"
  "test_system_stress.pdb"
  "test_system_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
