# Empty compiler generated dependencies file for test_system_stress.
# This may be replaced when dependencies are built.
