# Empty dependencies file for test_volume_edge_cases.
# This may be replaced when dependencies are built.
