# Empty compiler generated dependencies file for test_volume.
# This may be replaced when dependencies are built.
