file(REMOVE_RECURSE
  "CMakeFiles/test_retrieval_cache.dir/test_retrieval_cache.cc.o"
  "CMakeFiles/test_retrieval_cache.dir/test_retrieval_cache.cc.o.d"
  "test_retrieval_cache"
  "test_retrieval_cache.pdb"
  "test_retrieval_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retrieval_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
