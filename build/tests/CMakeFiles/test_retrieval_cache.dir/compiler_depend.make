# Empty compiler generated dependencies file for test_retrieval_cache.
# This may be replaced when dependencies are built.
