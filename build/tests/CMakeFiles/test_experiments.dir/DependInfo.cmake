
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_experiments.cc" "tests/CMakeFiles/test_experiments.dir/test_experiments.cc.o" "gcc" "tests/CMakeFiles/test_experiments.dir/test_experiments.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/d2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/d2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/d2_store.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/d2_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/d2_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/d2_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/d2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
