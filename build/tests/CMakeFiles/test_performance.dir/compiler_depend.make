# Empty compiler generated dependencies file for test_performance.
# This may be replaced when dependencies are built.
