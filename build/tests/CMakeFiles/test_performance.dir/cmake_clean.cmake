file(REMOVE_RECURSE
  "CMakeFiles/test_performance.dir/test_performance.cc.o"
  "CMakeFiles/test_performance.dir/test_performance.cc.o.d"
  "test_performance"
  "test_performance.pdb"
  "test_performance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
