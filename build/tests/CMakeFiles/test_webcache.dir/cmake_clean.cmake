file(REMOVE_RECURSE
  "CMakeFiles/test_webcache.dir/test_webcache.cc.o"
  "CMakeFiles/test_webcache.dir/test_webcache.cc.o.d"
  "test_webcache"
  "test_webcache.pdb"
  "test_webcache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_webcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
