# Empty dependencies file for test_webcache.
# This may be replaced when dependencies are built.
