file(REMOVE_RECURSE
  "CMakeFiles/test_block_map.dir/test_block_map.cc.o"
  "CMakeFiles/test_block_map.dir/test_block_map.cc.o.d"
  "test_block_map"
  "test_block_map.pdb"
  "test_block_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
