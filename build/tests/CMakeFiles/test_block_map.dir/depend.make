# Empty dependencies file for test_block_map.
# This may be replaced when dependencies are built.
