# Empty dependencies file for test_system_extensions.
# This may be replaced when dependencies are built.
