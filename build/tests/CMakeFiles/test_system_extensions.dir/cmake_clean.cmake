file(REMOVE_RECURSE
  "CMakeFiles/test_system_extensions.dir/test_system_extensions.cc.o"
  "CMakeFiles/test_system_extensions.dir/test_system_extensions.cc.o.d"
  "test_system_extensions"
  "test_system_extensions.pdb"
  "test_system_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
