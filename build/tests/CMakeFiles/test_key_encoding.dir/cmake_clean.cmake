file(REMOVE_RECURSE
  "CMakeFiles/test_key_encoding.dir/test_key_encoding.cc.o"
  "CMakeFiles/test_key_encoding.dir/test_key_encoding.cc.o.d"
  "test_key_encoding"
  "test_key_encoding.pdb"
  "test_key_encoding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_key_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
