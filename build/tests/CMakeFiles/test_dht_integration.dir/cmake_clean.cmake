file(REMOVE_RECURSE
  "CMakeFiles/test_dht_integration.dir/test_dht_integration.cc.o"
  "CMakeFiles/test_dht_integration.dir/test_dht_integration.cc.o.d"
  "test_dht_integration"
  "test_dht_integration.pdb"
  "test_dht_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dht_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
