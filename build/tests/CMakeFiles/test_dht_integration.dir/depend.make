# Empty dependencies file for test_dht_integration.
# This may be replaced when dependencies are built.
