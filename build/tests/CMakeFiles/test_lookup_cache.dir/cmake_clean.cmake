file(REMOVE_RECURSE
  "CMakeFiles/test_lookup_cache.dir/test_lookup_cache.cc.o"
  "CMakeFiles/test_lookup_cache.dir/test_lookup_cache.cc.o.d"
  "test_lookup_cache"
  "test_lookup_cache.pdb"
  "test_lookup_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lookup_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
