# Empty dependencies file for test_lookup_cache.
# This may be replaced when dependencies are built.
