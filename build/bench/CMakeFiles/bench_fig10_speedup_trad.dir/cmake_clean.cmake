file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_speedup_trad.dir/bench_fig10_speedup_trad.cc.o"
  "CMakeFiles/bench_fig10_speedup_trad.dir/bench_fig10_speedup_trad.cc.o.d"
  "bench_fig10_speedup_trad"
  "bench_fig10_speedup_trad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_speedup_trad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
