# Empty compiler generated dependencies file for bench_fig10_speedup_trad.
# This may be replaced when dependencies are built.
