file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_latency_scatter.dir/bench_fig14_latency_scatter.cc.o"
  "CMakeFiles/bench_fig14_latency_scatter.dir/bench_fig14_latency_scatter.cc.o.d"
  "bench_fig14_latency_scatter"
  "bench_fig14_latency_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_latency_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
