# Empty dependencies file for bench_fig14_latency_scatter.
# This may be replaced when dependencies are built.
