file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_churn.dir/bench_table3_churn.cc.o"
  "CMakeFiles/bench_table3_churn.dir/bench_table3_churn.cc.o.d"
  "bench_table3_churn"
  "bench_table3_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
