# Empty dependencies file for bench_fig9_lookup_traffic.
# This may be replaced when dependencies are built.
