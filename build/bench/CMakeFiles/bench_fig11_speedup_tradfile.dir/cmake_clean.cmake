file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_speedup_tradfile.dir/bench_fig11_speedup_tradfile.cc.o"
  "CMakeFiles/bench_fig11_speedup_tradfile.dir/bench_fig11_speedup_tradfile.cc.o.d"
  "bench_fig11_speedup_tradfile"
  "bench_fig11_speedup_tradfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_speedup_tradfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
