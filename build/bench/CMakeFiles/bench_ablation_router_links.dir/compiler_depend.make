# Empty compiler generated dependencies file for bench_ablation_router_links.
# This may be replaced when dependencies are built.
