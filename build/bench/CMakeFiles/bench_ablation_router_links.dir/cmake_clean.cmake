file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_router_links.dir/bench_ablation_router_links.cc.o"
  "CMakeFiles/bench_ablation_router_links.dir/bench_ablation_router_links.cc.o.d"
  "bench_ablation_router_links"
  "bench_ablation_router_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_router_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
