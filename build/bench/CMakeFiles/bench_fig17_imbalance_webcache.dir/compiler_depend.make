# Empty compiler generated dependencies file for bench_fig17_imbalance_webcache.
# This may be replaced when dependencies are built.
