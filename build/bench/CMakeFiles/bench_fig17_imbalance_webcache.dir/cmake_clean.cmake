file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_imbalance_webcache.dir/bench_fig17_imbalance_webcache.cc.o"
  "CMakeFiles/bench_fig17_imbalance_webcache.dir/bench_fig17_imbalance_webcache.cc.o.d"
  "bench_fig17_imbalance_webcache"
  "bench_fig17_imbalance_webcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_imbalance_webcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
