# Empty compiler generated dependencies file for bench_ablation_lb_threshold.
# This may be replaced when dependencies are built.
