# Empty compiler generated dependencies file for bench_table2_task_nodes.
# This may be replaced when dependencies are built.
