file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_locality.dir/bench_fig3_locality.cc.o"
  "CMakeFiles/bench_fig3_locality.dir/bench_fig3_locality.cc.o.d"
  "bench_fig3_locality"
  "bench_fig3_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
