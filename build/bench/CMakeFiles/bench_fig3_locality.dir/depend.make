# Empty dependencies file for bench_fig3_locality.
# This may be replaced when dependencies are built.
