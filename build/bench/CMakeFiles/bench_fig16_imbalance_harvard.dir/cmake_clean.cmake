file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_imbalance_harvard.dir/bench_fig16_imbalance_harvard.cc.o"
  "CMakeFiles/bench_fig16_imbalance_harvard.dir/bench_fig16_imbalance_harvard.cc.o.d"
  "bench_fig16_imbalance_harvard"
  "bench_fig16_imbalance_harvard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_imbalance_harvard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
