# Empty dependencies file for bench_fig16_imbalance_harvard.
# This may be replaced when dependencies are built.
