# Empty dependencies file for bench_ablation_replica_selection.
# This may be replaced when dependencies are built.
