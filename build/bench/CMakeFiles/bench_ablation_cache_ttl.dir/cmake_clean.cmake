file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cache_ttl.dir/bench_ablation_cache_ttl.cc.o"
  "CMakeFiles/bench_ablation_cache_ttl.dir/bench_ablation_cache_ttl.cc.o.d"
  "bench_ablation_cache_ttl"
  "bench_ablation_cache_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cache_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
