file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_latency_scatter_file.dir/bench_fig15_latency_scatter_file.cc.o"
  "CMakeFiles/bench_fig15_latency_scatter_file.dir/bench_fig15_latency_scatter_file.cc.o.d"
  "bench_fig15_latency_scatter_file"
  "bench_fig15_latency_scatter_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_latency_scatter_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
