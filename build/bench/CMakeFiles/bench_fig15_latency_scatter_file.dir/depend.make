# Empty dependencies file for bench_fig15_latency_scatter_file.
# This may be replaced when dependencies are built.
