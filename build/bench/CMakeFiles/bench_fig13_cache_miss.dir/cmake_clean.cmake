file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_cache_miss.dir/bench_fig13_cache_miss.cc.o"
  "CMakeFiles/bench_fig13_cache_miss.dir/bench_fig13_cache_miss.cc.o.d"
  "bench_fig13_cache_miss"
  "bench_fig13_cache_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_cache_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
