# Empty compiler generated dependencies file for bench_fig13_cache_miss.
# This may be replaced when dependencies are built.
