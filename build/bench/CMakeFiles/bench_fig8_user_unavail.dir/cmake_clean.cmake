file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_user_unavail.dir/bench_fig8_user_unavail.cc.o"
  "CMakeFiles/bench_fig8_user_unavail.dir/bench_fig8_user_unavail.cc.o.d"
  "bench_fig8_user_unavail"
  "bench_fig8_user_unavail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_user_unavail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
