# Empty compiler generated dependencies file for d2sim.
# This may be replaced when dependencies are built.
