file(REMOVE_RECURSE
  "CMakeFiles/d2sim.dir/d2sim.cc.o"
  "CMakeFiles/d2sim.dir/d2sim.cc.o.d"
  "d2sim"
  "d2sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
