file(REMOVE_RECURSE
  "libd2_net.a"
)
