# Empty compiler generated dependencies file for d2_net.
# This may be replaced when dependencies are built.
