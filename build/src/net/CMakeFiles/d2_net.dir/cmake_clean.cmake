file(REMOVE_RECURSE
  "CMakeFiles/d2_net.dir/latency.cc.o"
  "CMakeFiles/d2_net.dir/latency.cc.o.d"
  "CMakeFiles/d2_net.dir/tcp_model.cc.o"
  "CMakeFiles/d2_net.dir/tcp_model.cc.o.d"
  "libd2_net.a"
  "libd2_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
