file(REMOVE_RECURSE
  "libd2_sim.a"
)
