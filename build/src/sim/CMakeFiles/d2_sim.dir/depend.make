# Empty dependencies file for d2_sim.
# This may be replaced when dependencies are built.
