file(REMOVE_RECURSE
  "CMakeFiles/d2_sim.dir/bandwidth.cc.o"
  "CMakeFiles/d2_sim.dir/bandwidth.cc.o.d"
  "CMakeFiles/d2_sim.dir/event_queue.cc.o"
  "CMakeFiles/d2_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/d2_sim.dir/failure.cc.o"
  "CMakeFiles/d2_sim.dir/failure.cc.o.d"
  "CMakeFiles/d2_sim.dir/simulator.cc.o"
  "CMakeFiles/d2_sim.dir/simulator.cc.o.d"
  "libd2_sim.a"
  "libd2_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
