file(REMOVE_RECURSE
  "libd2_core.a"
)
