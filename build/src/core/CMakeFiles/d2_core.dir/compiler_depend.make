# Empty compiler generated dependencies file for d2_core.
# This may be replaced when dependencies are built.
