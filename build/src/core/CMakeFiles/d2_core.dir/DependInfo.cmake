
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/availability.cc" "src/core/CMakeFiles/d2_core.dir/availability.cc.o" "gcc" "src/core/CMakeFiles/d2_core.dir/availability.cc.o.d"
  "/root/repo/src/core/balance.cc" "src/core/CMakeFiles/d2_core.dir/balance.cc.o" "gcc" "src/core/CMakeFiles/d2_core.dir/balance.cc.o.d"
  "/root/repo/src/core/locality_analysis.cc" "src/core/CMakeFiles/d2_core.dir/locality_analysis.cc.o" "gcc" "src/core/CMakeFiles/d2_core.dir/locality_analysis.cc.o.d"
  "/root/repo/src/core/performance.cc" "src/core/CMakeFiles/d2_core.dir/performance.cc.o" "gcc" "src/core/CMakeFiles/d2_core.dir/performance.cc.o.d"
  "/root/repo/src/core/replay.cc" "src/core/CMakeFiles/d2_core.dir/replay.cc.o" "gcc" "src/core/CMakeFiles/d2_core.dir/replay.cc.o.d"
  "/root/repo/src/core/request_load.cc" "src/core/CMakeFiles/d2_core.dir/request_load.cc.o" "gcc" "src/core/CMakeFiles/d2_core.dir/request_load.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/d2_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/d2_core.dir/system.cc.o.d"
  "/root/repo/src/core/webcache.cc" "src/core/CMakeFiles/d2_core.dir/webcache.cc.o" "gcc" "src/core/CMakeFiles/d2_core.dir/webcache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/d2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/d2_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/d2_store.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/d2_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/d2_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
