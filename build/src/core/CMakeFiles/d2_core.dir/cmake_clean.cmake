file(REMOVE_RECURSE
  "CMakeFiles/d2_core.dir/availability.cc.o"
  "CMakeFiles/d2_core.dir/availability.cc.o.d"
  "CMakeFiles/d2_core.dir/balance.cc.o"
  "CMakeFiles/d2_core.dir/balance.cc.o.d"
  "CMakeFiles/d2_core.dir/locality_analysis.cc.o"
  "CMakeFiles/d2_core.dir/locality_analysis.cc.o.d"
  "CMakeFiles/d2_core.dir/performance.cc.o"
  "CMakeFiles/d2_core.dir/performance.cc.o.d"
  "CMakeFiles/d2_core.dir/replay.cc.o"
  "CMakeFiles/d2_core.dir/replay.cc.o.d"
  "CMakeFiles/d2_core.dir/request_load.cc.o"
  "CMakeFiles/d2_core.dir/request_load.cc.o.d"
  "CMakeFiles/d2_core.dir/system.cc.o"
  "CMakeFiles/d2_core.dir/system.cc.o.d"
  "CMakeFiles/d2_core.dir/webcache.cc.o"
  "CMakeFiles/d2_core.dir/webcache.cc.o.d"
  "libd2_core.a"
  "libd2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
