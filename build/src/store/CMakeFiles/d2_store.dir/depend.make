# Empty dependencies file for d2_store.
# This may be replaced when dependencies are built.
