file(REMOVE_RECURSE
  "libd2_store.a"
)
