
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/block_map.cc" "src/store/CMakeFiles/d2_store.dir/block_map.cc.o" "gcc" "src/store/CMakeFiles/d2_store.dir/block_map.cc.o.d"
  "/root/repo/src/store/lookup_cache.cc" "src/store/CMakeFiles/d2_store.dir/lookup_cache.cc.o" "gcc" "src/store/CMakeFiles/d2_store.dir/lookup_cache.cc.o.d"
  "/root/repo/src/store/retrieval_cache.cc" "src/store/CMakeFiles/d2_store.dir/retrieval_cache.cc.o" "gcc" "src/store/CMakeFiles/d2_store.dir/retrieval_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/d2_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
