file(REMOVE_RECURSE
  "CMakeFiles/d2_store.dir/block_map.cc.o"
  "CMakeFiles/d2_store.dir/block_map.cc.o.d"
  "CMakeFiles/d2_store.dir/lookup_cache.cc.o"
  "CMakeFiles/d2_store.dir/lookup_cache.cc.o.d"
  "CMakeFiles/d2_store.dir/retrieval_cache.cc.o"
  "CMakeFiles/d2_store.dir/retrieval_cache.cc.o.d"
  "libd2_store.a"
  "libd2_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
