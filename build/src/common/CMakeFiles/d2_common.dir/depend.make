# Empty dependencies file for d2_common.
# This may be replaced when dependencies are built.
