file(REMOVE_RECURSE
  "libd2_common.a"
)
