file(REMOVE_RECURSE
  "CMakeFiles/d2_common.dir/hash.cc.o"
  "CMakeFiles/d2_common.dir/hash.cc.o.d"
  "CMakeFiles/d2_common.dir/key.cc.o"
  "CMakeFiles/d2_common.dir/key.cc.o.d"
  "CMakeFiles/d2_common.dir/rng.cc.o"
  "CMakeFiles/d2_common.dir/rng.cc.o.d"
  "CMakeFiles/d2_common.dir/stats.cc.o"
  "CMakeFiles/d2_common.dir/stats.cc.o.d"
  "libd2_common.a"
  "libd2_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
