# Empty dependencies file for d2_trace.
# This may be replaced when dependencies are built.
