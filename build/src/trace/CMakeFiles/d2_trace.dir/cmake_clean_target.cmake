file(REMOVE_RECURSE
  "libd2_trace.a"
)
