file(REMOVE_RECURSE
  "CMakeFiles/d2_trace.dir/harvard_gen.cc.o"
  "CMakeFiles/d2_trace.dir/harvard_gen.cc.o.d"
  "CMakeFiles/d2_trace.dir/hp_gen.cc.o"
  "CMakeFiles/d2_trace.dir/hp_gen.cc.o.d"
  "CMakeFiles/d2_trace.dir/tasks.cc.o"
  "CMakeFiles/d2_trace.dir/tasks.cc.o.d"
  "CMakeFiles/d2_trace.dir/trace_io.cc.o"
  "CMakeFiles/d2_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/d2_trace.dir/web_gen.cc.o"
  "CMakeFiles/d2_trace.dir/web_gen.cc.o.d"
  "CMakeFiles/d2_trace.dir/workload.cc.o"
  "CMakeFiles/d2_trace.dir/workload.cc.o.d"
  "libd2_trace.a"
  "libd2_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
