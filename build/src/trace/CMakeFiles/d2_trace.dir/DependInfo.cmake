
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/harvard_gen.cc" "src/trace/CMakeFiles/d2_trace.dir/harvard_gen.cc.o" "gcc" "src/trace/CMakeFiles/d2_trace.dir/harvard_gen.cc.o.d"
  "/root/repo/src/trace/hp_gen.cc" "src/trace/CMakeFiles/d2_trace.dir/hp_gen.cc.o" "gcc" "src/trace/CMakeFiles/d2_trace.dir/hp_gen.cc.o.d"
  "/root/repo/src/trace/tasks.cc" "src/trace/CMakeFiles/d2_trace.dir/tasks.cc.o" "gcc" "src/trace/CMakeFiles/d2_trace.dir/tasks.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/d2_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/d2_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/web_gen.cc" "src/trace/CMakeFiles/d2_trace.dir/web_gen.cc.o" "gcc" "src/trace/CMakeFiles/d2_trace.dir/web_gen.cc.o.d"
  "/root/repo/src/trace/workload.cc" "src/trace/CMakeFiles/d2_trace.dir/workload.cc.o" "gcc" "src/trace/CMakeFiles/d2_trace.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
