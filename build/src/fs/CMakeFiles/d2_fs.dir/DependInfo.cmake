
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/key_encoding.cc" "src/fs/CMakeFiles/d2_fs.dir/key_encoding.cc.o" "gcc" "src/fs/CMakeFiles/d2_fs.dir/key_encoding.cc.o.d"
  "/root/repo/src/fs/volume.cc" "src/fs/CMakeFiles/d2_fs.dir/volume.cc.o" "gcc" "src/fs/CMakeFiles/d2_fs.dir/volume.cc.o.d"
  "/root/repo/src/fs/writeback_cache.cc" "src/fs/CMakeFiles/d2_fs.dir/writeback_cache.cc.o" "gcc" "src/fs/CMakeFiles/d2_fs.dir/writeback_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/d2_dht.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
