# Empty dependencies file for d2_fs.
# This may be replaced when dependencies are built.
