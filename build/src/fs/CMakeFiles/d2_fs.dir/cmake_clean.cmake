file(REMOVE_RECURSE
  "CMakeFiles/d2_fs.dir/key_encoding.cc.o"
  "CMakeFiles/d2_fs.dir/key_encoding.cc.o.d"
  "CMakeFiles/d2_fs.dir/volume.cc.o"
  "CMakeFiles/d2_fs.dir/volume.cc.o.d"
  "CMakeFiles/d2_fs.dir/writeback_cache.cc.o"
  "CMakeFiles/d2_fs.dir/writeback_cache.cc.o.d"
  "libd2_fs.a"
  "libd2_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
