file(REMOVE_RECURSE
  "libd2_fs.a"
)
