file(REMOVE_RECURSE
  "libd2_dht.a"
)
