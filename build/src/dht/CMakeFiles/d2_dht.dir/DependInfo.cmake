
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dht/consistent_hash.cc" "src/dht/CMakeFiles/d2_dht.dir/consistent_hash.cc.o" "gcc" "src/dht/CMakeFiles/d2_dht.dir/consistent_hash.cc.o.d"
  "/root/repo/src/dht/load_balance.cc" "src/dht/CMakeFiles/d2_dht.dir/load_balance.cc.o" "gcc" "src/dht/CMakeFiles/d2_dht.dir/load_balance.cc.o.d"
  "/root/repo/src/dht/ring.cc" "src/dht/CMakeFiles/d2_dht.dir/ring.cc.o" "gcc" "src/dht/CMakeFiles/d2_dht.dir/ring.cc.o.d"
  "/root/repo/src/dht/router.cc" "src/dht/CMakeFiles/d2_dht.dir/router.cc.o" "gcc" "src/dht/CMakeFiles/d2_dht.dir/router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
