file(REMOVE_RECURSE
  "CMakeFiles/d2_dht.dir/consistent_hash.cc.o"
  "CMakeFiles/d2_dht.dir/consistent_hash.cc.o.d"
  "CMakeFiles/d2_dht.dir/load_balance.cc.o"
  "CMakeFiles/d2_dht.dir/load_balance.cc.o.d"
  "CMakeFiles/d2_dht.dir/ring.cc.o"
  "CMakeFiles/d2_dht.dir/ring.cc.o.d"
  "CMakeFiles/d2_dht.dir/router.cc.o"
  "CMakeFiles/d2_dht.dir/router.cc.o.d"
  "libd2_dht.a"
  "libd2_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
