# Empty compiler generated dependencies file for d2_dht.
# This may be replaced when dependencies are built.
