# Empty dependencies file for loadbalance_demo.
# This may be replaced when dependencies are built.
