file(REMOVE_RECURSE
  "CMakeFiles/loadbalance_demo.dir/loadbalance_demo.cpp.o"
  "CMakeFiles/loadbalance_demo.dir/loadbalance_demo.cpp.o.d"
  "loadbalance_demo"
  "loadbalance_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadbalance_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
