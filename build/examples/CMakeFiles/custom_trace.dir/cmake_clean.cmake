file(REMOVE_RECURSE
  "CMakeFiles/custom_trace.dir/custom_trace.cpp.o"
  "CMakeFiles/custom_trace.dir/custom_trace.cpp.o.d"
  "custom_trace"
  "custom_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
