# Empty compiler generated dependencies file for webcache_demo.
# This may be replaced when dependencies are built.
