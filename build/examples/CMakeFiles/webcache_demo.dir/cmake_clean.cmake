file(REMOVE_RECURSE
  "CMakeFiles/webcache_demo.dir/webcache_demo.cpp.o"
  "CMakeFiles/webcache_demo.dir/webcache_demo.cpp.o.d"
  "webcache_demo"
  "webcache_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webcache_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
