#!/usr/bin/env python3
"""d2_arc_check — arc-ownership checker for the partitioned simulator.

The parallel-window engine's safety property (DESIGN.md §9/§12/§13) is
that arc-sharded state is only ever indexed by an expression derived
from the owning arc, and that every scheduler call lands where its
`// d2-sched:` class says it does. d2_lint.py used to approximate the
first half with a regex over a hard-coded member list; this tool checks
it semantically, for any member declared sharded at its declaration
site, with real index-expression analysis.

Sharded members are declared in the source, not in this tool:

    std::vector<Slice> slices_ D2_SHARDED_BY_ARC(arc);
    std::vector<Gate> gates_;  // d2-arc: sharded(arc)

The macro form (common/thread_annotations.h) also plants a Clang
`annotate` attribute so the member survives into the AST. Index domains:

    arc    index must derive from arc_of()/lane_arc(), an arc/lane/shard
           -named variable, or a loop variable whose bound is arc-derived
           (the "owning loop variable" rule).
    slot   arc, plus shard_slot() and slot-named variables (lane slot or
           the coordinator's extra slot).
    queue  arc, plus queue_index()/min_queue() and queue/qi-named
           variables (per-arc queues plus the global queue).

Diagnostics:

    unowned-sharded-access  first subscript of a sharded member does not
                            derive from its declared index domain.
    sched-class-mismatch    a schedule_* call's `// d2-sched:` tag does
                            not match where the closure actually lands:
                            `global` requires schedule_at/schedule_after
                            (or an explicit kGlobalArc), `arc-local` and
                            `mailbox` require schedule_arc_at/
                            schedule_arc_after onto a real arc.

Derivation analysis is token-level with per-file provenance: a local
initialized from a derived expression, or a for-loop variable whose
bound is derived, becomes derived itself (iterated to a fixpoint).
Scope tracking is per file, which is sound for flagging (identifiers
are checked, never trusted blindly across functions unless some
function derived that name — a deliberate false-negative trade; the
D2_ASSERT_OWNER_LANE runtime cross-check in common/lane.h covers the
residue).

Escape hatch: a line (or its predecessor) containing
    // d2-arc: allow(<diagnostic>) — <why it is safe>
suppresses that diagnostic for the line.

Engines:
    --engine=internal   (default) self-contained token/provenance
                        analysis over the raw sources. No dependencies;
                        this is the engine ctest and the lint CI gate
                        run.
    --engine=libclang   drives libclang over an exported
                        compile_commands.json (--compdb, default
                        build/compile_commands.json): sharded members
                        are discovered from their AST annotate
                        attributes and subscripts are located as AST
                        expressions, then validated with the same
                        domain analysis. When the clang python bindings
                        or the compilation database are unavailable the
                        tool says so and falls back to the internal
                        engine, so CI stays green on toolchain-less
                        hosts.

Usage:
    tools/d2_arc_check.py [--self-test] [--engine=E] [paths...]
    (default path: src/)

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from d2_lint import preprocess  # noqa: E402  (shared comment/string stripper)

DIAGNOSTICS = ("unowned-sharded-access", "sched-class-mismatch")

# ---------------------------------------------------------------- domains --

DOMAINS = {
    "arc": {
        "calls": {"arc_of", "lane_arc"},
        "segments": {"arc", "arcs", "lane", "lanes", "shard", "shards"},
    },
    "slot": {
        "calls": {"arc_of", "lane_arc", "shard_slot"},
        "segments": {"arc", "arcs", "lane", "lanes", "shard", "shards", "slot"},
    },
    "queue": {
        "calls": {"arc_of", "lane_arc", "queue_index", "min_queue"},
        "segments": {"arc", "arcs", "lane", "lanes", "shard", "shards",
                     "queue", "queues", "qi"},
    },
}

IDENT_RE = re.compile(r"[A-Za-z_]\w*")

MACRO_DECL_RE = re.compile(r"\b([A-Za-z_]\w*)\s+D2_SHARDED_BY_ARC\((\w+)\)")
COMMENT_DECL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:=[^;]*)?;.*//\s*d2-arc:\s*sharded\((\w+)\)"
)
ALLOW_RE = re.compile(r"//.*d2-arc:\s*allow\(([^)]*)\)")

# Local initializations and for-loops that propagate derivation.
INIT_RE = re.compile(
    r"\b(?:const\s+)?(?:std::)?(?:auto|int|long|unsigned|size_t|"
    r"uint32_t|uint64_t|int32_t|int64_t|ptrdiff_t)\b[\w\s:<>]*?"
    r"\b([A-Za-z_]\w*)\s*=\s*([^;,]+)[;,]"
)
FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?[\w:]+\s+([A-Za-z_]\w*)\s*=\s*[^;]*;"
    r"\s*([^;]*);"
)

SCHED_CALL_RE = re.compile(
    r"\b(schedule_at|schedule_after|schedule_arc_at|schedule_arc_after)\s*\("
)
SCHED_TAG_RE = re.compile(r"//\s*d2-sched:\s*(arc-local|mailbox|global)\b")
SCHED_DIRS = (os.sep + "core" + os.sep,)


class Finding:
    def __init__(self, path, line, diag, message):
        self.path = path
        self.line = line
        self.diag = diag
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.diag}] {self.message}"


def segments(ident):
    return {s for s in ident.lower().split("_") if s}


def expr_is_derived(expr, domain, extra_derived):
    """True when `expr` visibly derives from `domain`'s owning index:
    a domain call, a domain-named identifier, or a tracked derived
    local."""
    spec = DOMAINS[domain]
    for call in spec["calls"]:
        if re.search(rf"\b{call}\s*\(", expr):
            return True
    for tok in IDENT_RE.findall(expr):
        if tok in extra_derived:
            return True
        if segments(tok) & spec["segments"]:
            return True
    return False


def derived_locals(code_lines, registry):
    """Identifiers that become arc-derived through initialization or a
    for-loop bound, per file, to a fixpoint. Domain-blind on purpose: a
    name derived in any domain's terms is tracked, and the subscript
    check still applies the *member's* domain to the final index
    expression."""
    union_segments = set()
    union_calls = set()
    for spec in DOMAINS.values():
        union_segments |= spec["segments"]
        union_calls |= spec["calls"]

    def any_domain_derived(expr, extra):
        for call in union_calls:
            if re.search(rf"\b{call}\s*\(", expr):
                return True
        for tok in IDENT_RE.findall(expr):
            if tok in extra or segments(tok) & union_segments:
                return True
        return False

    derived = set()
    for _ in range(3):  # fixpoint: chains of 3+ hops don't occur
        grew = False
        for code in code_lines:
            for m in INIT_RE.finditer(code):
                name, init = m.group(1), m.group(2)
                if name not in derived and any_domain_derived(init, derived):
                    derived.add(name)
                    grew = True
            for m in FOR_RE.finditer(code):
                name, bound = m.group(1), m.group(2)
                if name not in derived and any_domain_derived(bound, derived):
                    derived.add(name)
                    grew = True
        if not grew:
            break
    return derived


# ---------------------------------------------------------------- registry --


def collect_registry(files):
    """{member name: (domain, decl_path, decl_line)} from macro and
    comment sharding declarations across the tree."""
    registry = {}
    for path in files:
        raw = read_lines(path)
        if raw is None:
            continue
        for i, line in enumerate(raw):
            if line.lstrip().startswith("#"):
                continue  # the macro's own #define is not a declaration
            for pattern in (MACRO_DECL_RE, COMMENT_DECL_RE):
                m = pattern.search(line)
                if not m:
                    continue
                name, domain = m.group(1), m.group(2)
                if domain not in DOMAINS:
                    registry[name] = ("?bad?", path, i + 1)
                    continue
                registry[name] = (domain, path, i + 1)
    return registry


def read_lines(path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            return f.read().splitlines()
    except OSError:
        return None


def allowed(raw_lines, i, diag):
    for text in (raw_lines[i], raw_lines[i - 1] if i > 0 else ""):
        m = ALLOW_RE.search(text)
        if m and diag in {d.strip() for d in m.group(1).split(",")}:
            return True
    return False


def first_subscript(text, start):
    """(index expression, end) for the bracket opening at text[start]
    == '['; None when unbalanced (continuation handled by caller)."""
    depth = 0
    for j in range(start, len(text)):
        if text[j] == "[":
            depth += 1
        elif text[j] == "]":
            depth -= 1
            if depth == 0:
                return text[start + 1:j], j
    return None


# ------------------------------------------------------- internal engine --


def check_sharded_access(path, raw_lines, code_lines, registry, findings):
    derived = derived_locals(code_lines, registry)
    for name, (domain, decl_path, decl_line) in registry.items():
        member_re = re.compile(rf"\b{name}\s*\[")
        for i, code in enumerate(code_lines):
            for m in member_re.finditer(code):
                # Join a few continuation lines so a subscript split
                # across lines still parses.
                text = code
                sub = first_subscript(text, m.end() - 1)
                extra = 0
                while sub is None and extra < 3 and i + extra + 1 < len(code_lines):
                    extra += 1
                    text = " ".join(code_lines[i:i + extra + 1])
                    m2 = member_re.search(text, m.start())
                    if m2 is None:
                        break
                    sub = first_subscript(text, m2.end() - 1)
                if sub is None:
                    continue
                index_expr = sub[0]
                if domain == "?bad?":
                    findings.append(Finding(
                        path, i + 1, "unowned-sharded-access",
                        f"'{name}' is declared sharded with an unknown "
                        f"index domain (see {decl_path}:{decl_line}); "
                        f"use one of {sorted(DOMAINS)}"))
                    continue
                if expr_is_derived(index_expr, domain, derived):
                    continue
                if allowed(raw_lines, i, "unowned-sharded-access"):
                    continue
                findings.append(Finding(
                    path, i + 1, "unowned-sharded-access",
                    f"sharded member '{name}' (domain '{domain}', declared "
                    f"at {decl_path}:{decl_line}) indexed by "
                    f"'{index_expr.strip()}', which does not derive from "
                    "the owning " + domain + "; route through " +
                    "/".join(sorted(DOMAINS[domain]["calls"])) + " or an "
                    "owning loop variable, or annotate why this "
                    "coordinator-side access is safe with "
                    "`// d2-arc: allow(unowned-sharded-access)`"))


def first_argument(text, call_end):
    """First top-level argument of the call whose '(' is at
    text[call_end - 1]; None when the parens don't close in `text`."""
    depth = 0
    for j in range(call_end - 1, len(text)):
        c = text[j]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                return text[call_end:j]
        elif c == "," and depth == 1:
            return text[call_end:j]
    return None


def check_sched_class(path, raw_lines, code_lines, findings):
    if not path.endswith(".cc") or not any(d in path for d in SCHED_DIRS):
        return
    for i, code in enumerate(code_lines):
        m = SCHED_CALL_RE.search(code)
        if not m:
            continue
        tag = None
        for text in (raw_lines[i], raw_lines[i - 1] if i > 0 else ""):
            t = SCHED_TAG_RE.search(text)
            if t:
                tag = t.group(1)
                break
        if tag is None:
            continue  # presence is d2_lint's sched-class rule
        call = m.group(1)
        if call in ("schedule_at", "schedule_after"):
            lands_global = True
        else:
            text = " ".join(code_lines[i:i + 3])
            m2 = SCHED_CALL_RE.search(text)
            arg = first_argument(text, m2.end()) if m2 else None
            lands_global = arg is not None and "kGlobalArc" in arg
        tag_global = tag == "global"
        if tag_global == lands_global:
            continue
        if allowed(raw_lines, i, "sched-class-mismatch"):
            continue
        where = "the global queue" if lands_global else "an arc queue"
        findings.append(Finding(
            path, i + 1, "sched-class-mismatch",
            f"`// d2-sched: {tag}` on a {call}() whose closure lands on "
            f"{where}; global tags belong on schedule_at/schedule_after "
            "(or explicit kGlobalArc) and arc-local/mailbox tags on "
            "schedule_arc_* onto a real arc"))


def run_internal(files, registry):
    findings = []
    for path in files:
        raw_lines = read_lines(path)
        if raw_lines is None:
            findings.append(Finding(path, 0, "io", "unreadable"))
            continue
        code_lines = preprocess(raw_lines)
        check_sharded_access(path, raw_lines, code_lines, registry, findings)
        check_sched_class(path, raw_lines, code_lines, findings)
    return findings


# ------------------------------------------------------- libclang engine --


def load_cindex():
    try:
        from clang import cindex
    except ImportError:
        return None
    for lib in (None, "libclang.so", "libclang-14.so.1", "libclang.so.1"):
        try:
            if lib is not None:
                cindex.Config.set_library_file(lib)
            cindex.Index.create()
            return cindex
        except Exception:  # noqa: BLE001 — probe alternatives
            # Config is sticky once loaded; a hard failure here means the
            # next probe needs a fresh interpreter, so just give up.
            if cindex.Config.loaded:
                return None
    return None


def run_libclang(files, registry, compdb_dir):
    """AST-grade pass: sharded members come from their `annotate`
    attributes, subscripts are located as AST expressions (raw [] and
    overloaded operator[]), and the index tokens run through the same
    domain analysis. Returns None when the toolchain is unavailable, so
    the caller can fall back to the internal engine."""
    cindex = load_cindex()
    if cindex is None:
        return None
    try:
        db = cindex.CompilationDatabase.fromDirectory(compdb_dir)
    except Exception:  # noqa: BLE001
        return None

    want = {os.path.abspath(p) for p in files}
    findings = []
    index = cindex.Index.create()
    seen_members = {}

    def member_annotation(field_cursor):
        for ch in field_cursor.get_children():
            if ch.kind == cindex.CursorKind.ANNOTATE_ATTR and \
                    ch.spelling.startswith("d2-arc:sharded:"):
                return ch.spelling.split(":", 2)[2]
        return None

    def subscript_parts(cursor):
        """(member name, index text) for subscript-shaped expressions."""
        k = cindex.CursorKind
        if cursor.kind == k.ARRAY_SUBSCRIPT_EXPR:
            pass
        elif cursor.kind == k.CALL_EXPR and cursor.spelling == "operator[]":
            pass
        else:
            return None
        toks = [t.spelling for t in cursor.get_tokens()]
        text = " ".join(toks)
        m = re.search(r"\b([A-Za-z_]\w*)\s*\[", text)
        if not m:
            return None
        sub = first_subscript(text, text.index("[", m.start()))
        if sub is None:
            return None
        return m.group(1), sub[0]

    def walk(cursor, path, file_derived):
        for ch in cursor.get_children():
            loc = ch.location
            if loc.file is not None and \
                    os.path.abspath(loc.file.name) not in want:
                continue
            if ch.kind == cindex.CursorKind.FIELD_DECL:
                domain = member_annotation(ch)
                if domain is not None:
                    seen_members[ch.spelling] = domain
            parts = subscript_parts(ch)
            if parts is not None:
                name, index_expr = parts
                domain = seen_members.get(name) or (
                    registry.get(name, (None,))[0])
                if domain in DOMAINS and not expr_is_derived(
                        index_expr, domain, file_derived):
                    raw = read_lines(os.path.abspath(loc.file.name)) or []
                    if not (raw and allowed(raw, loc.line - 1,
                                            "unowned-sharded-access")):
                        findings.append(Finding(
                            loc.file.name, loc.line,
                            "unowned-sharded-access",
                            f"sharded member '{name}' (domain '{domain}') "
                            f"indexed by '{index_expr.strip()}', which does "
                            f"not derive from the owning {domain}"))
            walk(ch, path, file_derived)

    parsed_any = False
    for cmd in db.getAllCompileCommands() or []:
        src = os.path.abspath(os.path.join(cmd.directory, cmd.filename))
        args = [a for a in list(cmd.arguments)[1:]
                if a not in ("-c", "-o", cmd.filename, src)]
        try:
            tu = index.parse(src, args=args)
        except Exception:  # noqa: BLE001
            continue
        parsed_any = True
        raw = read_lines(src)
        code = preprocess(raw) if raw else []
        file_derived = derived_locals(code, registry)
        walk(tu.cursor, src, file_derived)
        # The text-based sched check still applies (tags are comments,
        # invisible to the AST).
        if raw:
            check_sched_class(src, raw, code, [])
    if not parsed_any:
        return None
    # Headers are only seen through includers above; run the internal
    # engine too so header-only subscripts and sched tags are covered.
    findings.extend(run_internal(files, registry))
    # Dedup (a header subscript can surface via both passes).
    uniq = {}
    for f in findings:
        uniq[(os.path.abspath(f.path), f.line, f.diag)] = f
    return [uniq[k] for k in sorted(uniq, key=lambda k: (k[0], k[1], k[2]))]


# ---------------------------------------------------------------- driver --


def collect_files(paths):
    exts = (".cc", ".h")
    files = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(exts):
                files.append(p)
        elif os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(exts):
                        files.append(os.path.join(root, name))
        else:
            print(f"d2_arc_check: no such path: {p}", file=sys.stderr)
            return None
    return sorted(files)


# -------------------------------------------------------------- self-test --

SELF_TEST_CASES = [
    # (name, filename, source, expected diagnostic or None)
    (
        "macro-declared member, raw index flagged",
        "src/store/x.h",
        "std::vector<Slice> slices_ D2_SHARDED_BY_ARC(arc);\n"
        "void f() { slices_[0].clear(); }\n",
        "unowned-sharded-access",
    ),
    (
        "comment-declared member, raw index flagged",
        "src/core/x.h",
        "std::vector<Gate> gates_;  // d2-arc: sharded(arc)\n"
        "void f(int node) { gates_[node].due(); }\n",
        "unowned-sharded-access",
    ),
    (
        "arc_of-derived index clean",
        "src/core/x.h",
        "std::vector<Shard> expiry_ D2_SHARDED_BY_ARC(arc);\n"
        "void f(const Key& k) {\n"
        "  expiry_[static_cast<std::size_t>(map_.arc_of(k))].erase(k);\n"
        "}\n",
        None,
    ),
    (
        "owning loop variable clean",
        "src/core/x.h",
        "std::vector<Shard> shards_ D2_SHARDED_BY_ARC(arc);\n"
        "void f() {\n"
        "  for (int a = 0; a < config_.arcs; ++a) shards_[a].clear();\n"
        "}\n",
        None,
    ),
    (
        "derived-local chain clean",
        "src/core/x.h",
        "std::vector<Shard> shards_ D2_SHARDED_BY_ARC(arc);\n"
        "void f(const Key& k) {\n"
        "  const int owner = map_.arc_of(k);\n"
        "  const std::size_t idx = static_cast<std::size_t>(owner);\n"
        "  shards_[idx].touch();\n"
        "}\n",
        None,
    ),
    (
        "slot domain: shard_slot clean",
        "src/core/x.h",
        "std::vector<Bytes> bytes_sh_ D2_SHARDED_BY_ARC(slot);\n"
        "void f(Bytes n) { bytes_sh_[shard_slot()] += n; }\n",
        None,
    ),
    (
        "slot domain: node index flagged",
        "src/core/x.h",
        "std::vector<Bytes> bytes_sh_ D2_SHARDED_BY_ARC(slot);\n"
        "void f(int node, Bytes n) { bytes_sh_[node] += n; }\n",
        "unowned-sharded-access",
    ),
    (
        "queue domain: qi and queue_index clean",
        "src/sim/x.h",
        "std::vector<EventQueue> queues_ D2_SHARDED_BY_ARC(queue);\n"
        "void f(int arc) {\n"
        "  const int qi = min_queue();\n"
        "  queues_[static_cast<std::size_t>(qi)].pop();\n"
        "  queues_[queue_index(arc)].pop();\n"
        "}\n",
        None,
    ),
    (
        "queue domain: literal index flagged",
        "src/sim/x.h",
        "std::vector<EventQueue> queues_ D2_SHARDED_BY_ARC(queue);\n"
        "void f() { queues_[3].pop(); }\n",
        "unowned-sharded-access",
    ),
    (
        "allow escape clean",
        "src/core/x.h",
        "std::vector<Shard> shards_ D2_SHARDED_BY_ARC(arc);\n"
        "void audit(std::size_t i) {\n"
        "  // Coordinator audit walks every shard between windows.\n"
        "  // d2-arc: allow(unowned-sharded-access)\n"
        "  shards_[i].check();\n"
        "}\n",
        None,
    ),
    (
        "unknown domain flagged",
        "src/core/x.h",
        "std::vector<int> v_ D2_SHARDED_BY_ARC(node);\n"
        "void f(int arc) { v_[arc] = 1; }\n",
        "unowned-sharded-access",
    ),
    (
        "multi-line subscript clean",
        "src/core/x.h",
        "std::vector<Shard> reservations_ D2_SHARDED_BY_ARC(arc);\n"
        "void f(const Key& k) {\n"
        "  reservations_[static_cast<std::size_t>(\n"
        "      map_.arc_of(k))].push_back(1);\n"
        "}\n",
        None,
    ),
    (
        "global tag on arc schedule flagged",
        "src/core/x.cc",
        "void System::arm(const Key& k) {\n"
        "  // d2-sched: global — wrong: this lands on k's arc queue\n"
        "  sim_.schedule_arc_at(map_.arc_of(k), t, cb);\n"
        "}\n",
        "sched-class-mismatch",
    ),
    (
        "arc-local tag on global schedule flagged",
        "src/core/x.cc",
        "void System::arm() {\n"
        "  // d2-sched: arc-local — wrong: schedule_after is the global "
        "queue\n"
        "  sim_.schedule_after(delay, cb);\n"
        "}\n",
        "sched-class-mismatch",
    ),
    (
        "matching tags clean",
        "src/core/x.cc",
        "void System::arm(const Key& k) {\n"
        "  // d2-sched: arc-local — timer touches only k's shard\n"
        "  sim_.schedule_arc_at(map_.arc_of(k), t, cb);\n"
        "  // d2-sched: global — barrier\n"
        "  sim_.schedule_after(delay, cb);\n"
        "}\n",
        None,
    ),
    (
        "kGlobalArc with global tag clean",
        "src/core/x.cc",
        "void System::arm() {\n"
        "  // d2-sched: global — explicit global-queue push\n"
        "  sim_.schedule_arc_at(sim::Simulator::kGlobalArc, t, cb);\n"
        "}\n",
        None,
    ),
    (
        "mailbox tag on arc schedule clean",
        "src/core/x.cc",
        "void System::arm(const Key& k, int other_arc) {\n"
        "  // d2-sched: mailbox — cross-arc send, staged at the barrier\n"
        "  sim_.schedule_arc_at(other_arc, t, cb);\n"
        "}\n",
        None,
    ),
    (
        "untagged call ignored here (d2_lint owns presence)",
        "src/core/x.cc",
        "void System::arm() { sim_.schedule_after(delay, cb); }\n",
        None,
    ),
    (
        "sched mismatch allow escape clean",
        "src/core/x.cc",
        "void System::arm() {\n"
        "  // d2-sched: arc-local — d2-arc: allow(sched-class-mismatch)\n"
        "  sim_.schedule_after(delay, cb);\n"
        "}\n",
        None,
    ),
    (
        "comment/string mentions clean",
        "src/core/x.cc",
        "// slices_[0] in a comment is fine\n"
        'const char* kMsg = "slices_[0]";\n',
        None,
    ),
]


def run_self_test():
    import tempfile

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for name, relpath, source, expected in SELF_TEST_CASES:
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(source)
            registry = collect_registry([path])
            findings = run_internal([path], registry)
            diags = {f.diag for f in findings}
            if expected is None:
                if findings:
                    print(f"SELF-TEST FAIL [{name}]: expected clean, got "
                          f"{[str(f) for f in findings]}")
                    failures += 1
            else:
                if expected not in diags:
                    print(f"SELF-TEST FAIL [{name}]: expected {expected}, "
                          f"got {sorted(diags) or 'nothing'}")
                    failures += 1
                if diags - {expected}:
                    print(f"SELF-TEST FAIL [{name}]: unexpected extra "
                          f"findings {sorted(diags - {expected})}")
                    failures += 1
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print(f"self-test: {len(SELF_TEST_CASES)} cases passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Arc-ownership checker for the partitioned simulator."
    )
    parser.add_argument("paths", nargs="*", default=[], help="files or dirs")
    parser.add_argument("--self-test", action="store_true",
                        help="run embedded violation fixtures")
    parser.add_argument("--engine", choices=("internal", "libclang"),
                        default="internal")
    parser.add_argument("--compdb", default="build",
                        help="directory holding compile_commands.json "
                             "(libclang engine)")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    files = collect_files(args.paths or ["src"])
    if files is None:
        return 2
    registry = collect_registry(files)
    if not registry:
        print("d2_arc_check: no sharded members declared in the given "
              "paths — nothing to check", file=sys.stderr)

    findings = None
    if args.engine == "libclang":
        findings = run_libclang(files, registry, args.compdb)
        if findings is None:
            print("d2_arc_check: libclang engine unavailable (no clang "
                  "python bindings or no compile_commands.json); falling "
                  "back to the internal engine", file=sys.stderr)
    if findings is None:
        findings = run_internal(files, registry)

    for f in findings:
        print(f)
    if findings:
        print(f"d2_arc_check: {len(findings)} finding(s) in "
              f"{len(files)} file(s) ({len(registry)} sharded member(s))")
        return 1
    print(f"d2_arc_check: clean — {len(registry)} sharded member(s), "
          f"{len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
