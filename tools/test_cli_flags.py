#!/usr/bin/env python3
"""CLI flag-validation tests for d2sim.

Malformed flag values must exit with the usage status (2), never crash
or silently fall back to defaults; a small well-formed run must still
exit 0. Run as: test_cli_flags.py <path-to-d2sim>.
"""
import subprocess
import sys

USAGE_EXIT = 2

BASE = ["availability", "--nodes=16", "--users=2", "--days=1", "--seed=1"]

# (extra flags, expected exit status, label)
CASES = [
    (["--arcs=0"], USAGE_EXIT, "zero arcs"),
    (["--arcs=-3"], USAGE_EXIT, "negative arcs"),
    (["--arcs=abc"], USAGE_EXIT, "non-numeric arcs"),
    (["--arcs=1025"], USAGE_EXIT, "arcs above ArcPlan cap"),
    (["--arc-workers=0"], USAGE_EXIT, "zero arc workers"),
    (["--arc-workers=-1"], USAGE_EXIT, "negative arc workers"),
    (["--arc-workers=xyz"], USAGE_EXIT, "non-numeric arc workers"),
    (["--accesses=-5"], USAGE_EXIT, "negative access rate"),
    (["--scatter=2", "--arcs=4"], USAGE_EXIT, "scatter with multiple arcs"),
    (["--scheduler=bogus"], USAGE_EXIT, "unknown scheduler backend"),
    (["--scheduler=wheel"], 0, "timing-wheel scheduler"),
    (["--scheduler=heap"], 0, "reference heap scheduler"),
    (["--arcs=4", "--arc-workers=2"], 0, "valid partitioned run"),
    # Oversized worker requests clamp to hardware concurrency, not error.
    (["--arcs=4", "--arc-workers=9999"], 0, "worker count clamps"),
]


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: test_cli_flags.py <d2sim>", file=sys.stderr)
        return 2
    d2sim = sys.argv[1]
    failures = 0
    for extra, want, label in CASES:
        proc = subprocess.run(
            [d2sim] + BASE + extra,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=120,
        )
        status = "ok" if proc.returncode == want else "FAIL"
        if proc.returncode != want:
            failures += 1
        print(f"{status}: {label} ({' '.join(extra)}) -> exit "
              f"{proc.returncode}, want {want}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
