#!/usr/bin/env python3
"""Run bench_micro and emit a compact BENCH_micro.json snapshot.

Wraps the google-benchmark binary (--benchmark_format=json), keeps only the
fields that matter for trend tracking (real/cpu time per iteration, items
per second), and optionally:

  * times an end-to-end `d2sim performance` trial (wall clock),
  * computes per-benchmark speedups against a previously committed
    baseline snapshot (--baseline: informational only),
  * gates against a snapshot (--compare: prints a per-benchmark ratio
    table and exits non-zero when any benchmark regressed more than
    REGRESSION_FACTOR vs the comparison file — CI runs this report-only;
    --allow-new PREFIX exempts a newly added benchmark family from the
    one-sided-name failure), and
  * records e2e snapshots into BENCH_e2e.json: --e2e-scale (availability
    scale ladder) and --e2e-durability (correlated-failure repair probe,
    rep3 vs rs-6-3) each merge their own section without clobbering the
    other's.

Usage:
  tools/bench_to_json.py --bench build/bench/bench_micro \
      [--out BENCH_micro.json] [--label after] [--min-time 0.1] \
      [--d2sim build/tools/d2sim] [--baseline BENCH_micro_baseline.json] \
      [--compare BENCH_micro.json] [--filter REGEX]

Exit status is non-zero if the benchmark binary fails, or if --compare
found a regression beyond the threshold.
"""

import argparse
import hashlib
import json
import subprocess
import sys
import time


def run_benchmarks(bench, min_time, bench_filter):
    # Older google-benchmark releases want a bare double for min_time;
    # newer ones also accept it (interpreted as seconds).
    cmd = [
        bench,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    raw = json.loads(proc.stdout)
    out = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "real_time_ns": to_ns(b["real_time"], b["time_unit"]),
            "cpu_time_ns": to_ns(b["cpu_time"], b["time_unit"]),
            "iterations": b["iterations"],
        }
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        if "bytes_per_second" in b:
            entry["bytes_per_second"] = b["bytes_per_second"]
        out[b["name"]] = entry
    return {"context": slim_context(raw.get("context", {})), "benchmarks": out}


def slim_context(ctx):
    return {
        k: ctx[k]
        for k in ("host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
        if k in ctx
    }


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return value * scale


def time_d2sim(d2sim):
    """Wall-clock one seeded end-to-end performance trial (2 trials, 1 job:
    measures per-trial cost, not parallelism)."""
    cmd = [
        d2sim, "performance", "--scheme=d2", "--nodes=48",
        "--trials=2", "--jobs=1", "--seed=1",
    ]
    start = time.monotonic()
    subprocess.run(cmd, stdout=subprocess.DEVNULL, check=True)
    elapsed = time.monotonic() - start
    return {"command": " ".join(cmd[1:]), "wall_seconds": round(elapsed, 3)}


# Scale ladder (EXPERIMENTS.md "scale ladder"): one seeded availability
# trial per rung, 10 users per node, fixed per-user access rate. The top
# rung needs the arc-partitioned core — a single event queue exhausts its
# 24-bit slot space holding the ~20M pending TTL events of a 10k-node
# system, so every rung runs with --arcs=64.
SCALE_RUNGS = [(256, 2560), (1000, 10000), (10000, 100000),
               (50000, 1000000)]


def run_scale_rung(d2sim, nodes, users, arc_workers):
    """One seeded availability trial. The returned rung carries its own
    arc_workers (rungs at different worker counts coexist in a snapshot)
    and a digest of the per-trial result lines: equal digests at
    different --arc-workers is the byte-identical-output check straight
    from the committed snapshot."""
    cmd = [
        d2sim, "availability", f"--nodes={nodes}", f"--users={users}",
        "--days=1", "--accesses=20", "--seed=1", "--trials=1",
        "--jobs=1", "--arcs=64", f"--arc-workers={arc_workers}",
    ]
    start = time.monotonic()
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True,
                          text=True)
    elapsed = time.monotonic() - start
    tasks = 0
    trial_lines = []
    for line in proc.stdout.splitlines():
        if line.startswith("trial="):
            trial_lines.append(line)
            if " tasks=" in line:
                tasks = int(line.split(" tasks=")[1].split()[0])
    digest = hashlib.sha256("\n".join(trial_lines).encode()).hexdigest()
    rung = {
        "nodes": nodes,
        "users": users,
        "arc_workers": arc_workers,
        "command": " ".join(cmd[1:]),
        "wall_seconds": round(elapsed, 3),
        "tasks": tasks,
        "tasks_per_second": round(tasks / elapsed, 1) if elapsed else 0,
        "output_sha256": digest[:16],
    }
    print(f"scale rung nodes={nodes} w{arc_workers}: {elapsed:.1f}s, "
          f"{rung['tasks_per_second']} tasks/s, output {digest[:16]}")
    return rung


def note_scale_regressions(rungs, prior_section):
    """Annotates any rung whose throughput fell more than
    REGRESSION_FACTOR below the committed snapshot's same-shape rung
    (matched on nodes/users/arc_workers; legacy snapshots without
    per-rung arc_workers match on the section-level value). The note
    lands in the snapshot itself so a slow rung is visible in review,
    not only in a CI log."""
    prior = {}
    if prior_section:
        section_workers = prior_section.get("arc_workers")
        for r in prior_section.get("rungs", []):
            w = r.get("arc_workers", section_workers)
            prior[(r.get("nodes"), r.get("users"), w)] = r
        for r in prior_section.get("worker_scaling", []):
            prior[(r.get("nodes"), r.get("users"), r.get("arc_workers"))] = r
    for rung in rungs:
        old = prior.get((rung["nodes"], rung["users"], rung["arc_workers"]))
        if not old:
            continue
        old_tps = old.get("tasks_per_second", 0)
        if old_tps > 0 and rung["tasks_per_second"] * REGRESSION_FACTOR < old_tps:
            rung["regression_note"] = (
                f"tasks_per_second {rung['tasks_per_second']} is more than "
                f"{REGRESSION_FACTOR}x below the committed {old_tps}; "
                "investigate or re-record the snapshot")
            print(f"WARNING scale rung nodes={rung['nodes']} "
                  f"w{rung['arc_workers']}: {rung['regression_note']}")


# Worker-scaling sweep: rungs wide enough for parallel windows to matter.
WORKER_SCALING_MIN_NODES = 10000


def run_scale_ladder(d2sim, arc_workers, prior_section=None,
                     extra_workers=()):
    rungs = [run_scale_rung(d2sim, nodes, users, arc_workers)
             for nodes, users in SCALE_RUNGS]
    section = {"arc_workers": arc_workers, "rungs": rungs}
    scaling = []
    for w in extra_workers:
        if w == arc_workers:
            continue
        for nodes, users in SCALE_RUNGS:
            if nodes < WORKER_SCALING_MIN_NODES:
                continue
            scaling.append(run_scale_rung(d2sim, nodes, users, w))
    if scaling:
        section["worker_scaling"] = scaling
    note_scale_regressions(rungs + scaling, prior_section)
    return section


# Durability probe (EXPERIMENTS.md "durability under correlated
# failures"): one seeded correlated-failure week through the repair
# engine per redundancy scheme, at the 1k-node rung. Deterministic for a
# fixed seed regardless of --arcs/--arc-workers, so the parsed numbers
# are stable across runs and machines.
DURABILITY_SCHEMES = ["rep3", "rs-6-3"]


def run_durability_probe(d2sim, arc_workers):
    runs = []
    for scheme in DURABILITY_SCHEMES:
        cmd = [
            d2sim, "repair", "--nodes=1000", "--blocks-per-node=20",
            "--days=7",
            f"--redundancy={scheme}", "--seed=1", "--arcs=64",
            f"--arc-workers={arc_workers}",
        ]
        start = time.monotonic()
        proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True,
                              text=True)
        elapsed = time.monotonic() - start
        entry = {"scheme": scheme, "command": " ".join(cmd[1:]),
                 "wall_seconds": round(elapsed, 3)}
        for line in proc.stdout.splitlines():
            if line.startswith("durability:"):
                lost, total = line.split("lost=")[1].split()[0].split("/")
                entry["blocks_lost"] = int(lost)
                entry["blocks"] = int(total)
            elif line.startswith("repair traffic:"):
                entry["l_over_w"] = float(line.split("L/W=")[1])
            elif line.startswith("repairs:"):
                entry["repairs_completed"] = int(
                    line.split("completed=")[1].split()[0])
            elif line.startswith("mttr:"):
                entry["mttr_mean_s"] = float(
                    line.split("mean=")[1].split("s")[0])
                entry["mttr_p99_s"] = float(
                    line.split("p99=")[1].split("s")[0])
                entry["open_episodes"] = int(
                    line.split("open=")[1].split()[0])
        runs.append(entry)
        print(f"durability {scheme}: {elapsed:.1f}s, "
              f"lost={entry.get('blocks_lost', '?')}/"
              f"{entry.get('blocks', '?')}, "
              f"L/W={entry.get('l_over_w', '?')}")
    return {"arc_workers": arc_workers, "runs": runs}


def merge_e2e(path, key, section, label):
    """Update one section of the e2e snapshot in place, preserving the
    others (a durability-only run must not clobber the scale ladder)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        doc = {}
    doc["label"] = label
    doc[key] = section
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {key} to {path}")


def speedups(baseline, current):
    out = {}
    base = baseline.get("benchmarks", {})
    for name, entry in current["benchmarks"].items():
        if name in base and entry["real_time_ns"] > 0:
            out[name] = round(base[name]["real_time_ns"] / entry["real_time_ns"], 3)
    base_e2e = baseline.get("e2e_d2sim_performance")
    cur_e2e = current.get("e2e_d2sim_performance")
    if base_e2e and cur_e2e and cur_e2e["wall_seconds"] > 0:
        out["e2e_d2sim_performance"] = round(
            base_e2e["wall_seconds"] / cur_e2e["wall_seconds"], 3)
    return out


# --compare fails only on >2x slowdowns: shared CI runners are noisy
# enough that small ratios are meaningless, but a halved throughput is a
# real regression (or a baseline that needs re-recording — see
# DESIGN.md §5c).
REGRESSION_FACTOR = 2.0


def compare_report(reference, current, allow_new=()):
    """Prints a per-benchmark ratio table vs `reference`; returns a list
    of failure strings: benchmarks that regressed more than
    REGRESSION_FACTOR, plus any name present in only one of the two
    snapshots (a one-sided name means the suites diverged — renamed or
    dropped benchmarks silently escape the gate unless it fails here).

    `allow_new` is a list of name prefixes for benchmark families that
    are expected to be one-sided: a freshly added family (e.g. BM_Ec*)
    compared against a historical snapshot should not fail the gate, and
    conversely a gate run that --filter'ed the family out should not
    fail against a snapshot that has it. Timing regressions within an
    allowed family still fail normally once both sides have the name."""
    ref = reference.get("benchmarks", {})
    cur = current["benchmarks"]
    failures = []
    rows = []

    def is_allowed_new(name):
        return any(name.startswith(p) for p in allow_new)

    for name, entry in sorted(cur.items()):
        if name not in ref:
            rows.append((name, None))
            if is_allowed_new(name):
                continue  # labelled in the table, not gated
            failures.append(
                f"{name}: only in current run, not in reference "
                f"'{reference.get('label', '?')}' — re-record the reference "
                "snapshot if this benchmark was added intentionally, or "
                "pass --allow-new with its family prefix")
            continue
        if ref[name]["real_time_ns"] <= 0:
            rows.append((name, None))
            continue
        ratio = entry["real_time_ns"] / ref[name]["real_time_ns"]
        rows.append((name, ratio))
        if ratio > REGRESSION_FACTOR:
            failures.append(
                f"{name}: {ratio:.3f}x slower than reference "
                f"(> {REGRESSION_FACTOR}x threshold)")
    for name in sorted(set(ref) - set(cur)):
        rows.append((name, None))
        if is_allowed_new(name):
            continue  # labelled in the table, not gated
        failures.append(
            f"{name}: in reference but missing from current run — the "
            "benchmark was removed or renamed, or --filter excluded it")
    width = max((len(n) for n, _ in rows), default=0)
    print(f"compare vs '{reference.get('label', '?')}' "
          f"(ratio = current/reference real time; > {REGRESSION_FACTOR}x fails)")
    for name, ratio in rows:
        if ratio is None:
            if name in ref and name in cur:
                side = "(no reference timing)"
            elif is_allowed_new(name):
                side = "(one-sided: new family, allowed)"
            else:
                side = "(one-sided: see FAIL below)"
            print(f"  {name:<{width}}  {side}")
        else:
            flag = "  << REGRESSION" if ratio > REGRESSION_FACTOR else ""
            print(f"  {name:<{width}}  {ratio:6.3f}x{flag}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", default="", help="path to bench_micro binary")
    ap.add_argument("--out", default="BENCH_micro.json")
    ap.add_argument("--label", default="run")
    ap.add_argument("--min-time", type=float, default=0.1)
    ap.add_argument("--filter", default="", help="benchmark name regex")
    ap.add_argument("--d2sim", default="", help="also wall-clock a d2sim trial")
    ap.add_argument("--baseline", default="",
                    help="previous snapshot to compute speedups against")
    ap.add_argument("--compare", default="",
                    help="snapshot to gate against: print ratio table, exit "
                         f"non-zero on a > {REGRESSION_FACTOR}x regression")
    ap.add_argument("--allow-new", action="append", default=[],
                    metavar="PREFIX",
                    help="benchmark-name prefix for a family that may be "
                         "one-sided in --compare (newly added, or filtered "
                         "out); repeatable. Timing regressions still gate.")
    ap.add_argument("--e2e-scale", action="store_true",
                    help="run the availability scale ladder (256/1k/10k/50k "
                         "nodes, --arcs=64) and merge it into --e2e-out; "
                         "requires --d2sim")
    ap.add_argument("--e2e-durability", action="store_true",
                    help="run the correlated-failure durability probe "
                         "(d2sim repair, rep3 + rs-6-3 at 1k nodes) and "
                         "merge it into --e2e-out; requires --d2sim")
    ap.add_argument("--e2e-out", default="BENCH_e2e.json")
    ap.add_argument("--e2e-arc-workers", type=int, default=1,
                    help="--arc-workers for the e2e scale/durability runs")
    ap.add_argument("--e2e-scale-workers", action="append", type=int,
                    default=[], metavar="W",
                    help="additionally run the wide scale rungs (>= "
                         f"{WORKER_SCALING_MIN_NODES} nodes) at this "
                         "--arc-workers count, recorded under "
                         "worker_scaling; repeatable")
    args = ap.parse_args()

    if args.e2e_scale or args.e2e_durability:
        if not args.d2sim:
            ap.error("--e2e-scale/--e2e-durability require --d2sim")
        if args.e2e_scale:
            try:
                with open(args.e2e_out) as f:
                    prior_section = json.load(f).get("e2e_scale")
            except (OSError, ValueError):
                prior_section = None
            merge_e2e(args.e2e_out, "e2e_scale",
                      run_scale_ladder(args.d2sim, args.e2e_arc_workers,
                                       prior_section,
                                       args.e2e_scale_workers),
                      args.label)
        if args.e2e_durability:
            merge_e2e(args.e2e_out, "e2e_durability",
                      run_durability_probe(args.d2sim, args.e2e_arc_workers),
                      args.label)
        if not args.bench:
            return 0
    if not args.bench:
        ap.error("--bench is required unless --e2e-scale or "
                 "--e2e-durability runs alone")

    result = run_benchmarks(args.bench, args.min_time, args.filter)
    result["label"] = args.label
    if args.d2sim:
        result["e2e_d2sim_performance"] = time_d2sim(args.d2sim)
    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        result["baseline_label"] = baseline.get("label", "?")
        result["speedup_vs_baseline"] = speedups(baseline, result)

    with open(args.out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {len(result['benchmarks'])} benchmarks to {args.out}")
    if "speedup_vs_baseline" in result:
        for name, s in sorted(result["speedup_vs_baseline"].items()):
            print(f"  {name}: {s}x")
    if args.compare:
        with open(args.compare) as f:
            reference = json.load(f)
        failures = compare_report(reference, result, args.allow_new)
        if failures:
            print(f"FAIL: {len(failures)} comparison failure(s):")
            for f in failures:
                print(f"  {f}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
