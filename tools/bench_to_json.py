#!/usr/bin/env python3
"""Run bench_micro and emit a compact BENCH_micro.json snapshot.

Wraps the google-benchmark binary (--benchmark_format=json), keeps only the
fields that matter for trend tracking (real/cpu time per iteration, items
per second), and optionally:

  * times an end-to-end `d2sim performance` trial (wall clock),
  * computes per-benchmark speedups against a previously committed
    baseline snapshot (--baseline: informational only), and
  * gates against a snapshot (--compare: prints a per-benchmark ratio
    table and exits non-zero when any benchmark regressed more than
    REGRESSION_FACTOR vs the comparison file — CI runs this report-only).

Usage:
  tools/bench_to_json.py --bench build/bench/bench_micro \
      [--out BENCH_micro.json] [--label after] [--min-time 0.1] \
      [--d2sim build/tools/d2sim] [--baseline BENCH_micro_baseline.json] \
      [--compare BENCH_micro.json] [--filter REGEX]

Exit status is non-zero if the benchmark binary fails, or if --compare
found a regression beyond the threshold.
"""

import argparse
import json
import subprocess
import sys
import time


def run_benchmarks(bench, min_time, bench_filter):
    # Older google-benchmark releases want a bare double for min_time;
    # newer ones also accept it (interpreted as seconds).
    cmd = [
        bench,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    raw = json.loads(proc.stdout)
    out = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "real_time_ns": to_ns(b["real_time"], b["time_unit"]),
            "cpu_time_ns": to_ns(b["cpu_time"], b["time_unit"]),
            "iterations": b["iterations"],
        }
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        if "bytes_per_second" in b:
            entry["bytes_per_second"] = b["bytes_per_second"]
        out[b["name"]] = entry
    return {"context": slim_context(raw.get("context", {})), "benchmarks": out}


def slim_context(ctx):
    return {
        k: ctx[k]
        for k in ("host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
        if k in ctx
    }


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return value * scale


def time_d2sim(d2sim):
    """Wall-clock one seeded end-to-end performance trial (2 trials, 1 job:
    measures per-trial cost, not parallelism)."""
    cmd = [
        d2sim, "performance", "--scheme=d2", "--nodes=48",
        "--trials=2", "--jobs=1", "--seed=1",
    ]
    start = time.monotonic()
    subprocess.run(cmd, stdout=subprocess.DEVNULL, check=True)
    elapsed = time.monotonic() - start
    return {"command": " ".join(cmd[1:]), "wall_seconds": round(elapsed, 3)}


def speedups(baseline, current):
    out = {}
    base = baseline.get("benchmarks", {})
    for name, entry in current["benchmarks"].items():
        if name in base and entry["real_time_ns"] > 0:
            out[name] = round(base[name]["real_time_ns"] / entry["real_time_ns"], 3)
    base_e2e = baseline.get("e2e_d2sim_performance")
    cur_e2e = current.get("e2e_d2sim_performance")
    if base_e2e and cur_e2e and cur_e2e["wall_seconds"] > 0:
        out["e2e_d2sim_performance"] = round(
            base_e2e["wall_seconds"] / cur_e2e["wall_seconds"], 3)
    return out


# --compare fails only on >2x slowdowns: shared CI runners are noisy
# enough that small ratios are meaningless, but a halved throughput is a
# real regression (or a baseline that needs re-recording — see
# DESIGN.md §5c).
REGRESSION_FACTOR = 2.0


def compare_report(reference, current):
    """Prints a per-benchmark ratio table vs `reference`; returns the
    names that regressed more than REGRESSION_FACTOR."""
    ref = reference.get("benchmarks", {})
    regressed = []
    rows = []
    for name, entry in sorted(current["benchmarks"].items()):
        if name not in ref or ref[name]["real_time_ns"] <= 0:
            rows.append((name, None))
            continue
        ratio = entry["real_time_ns"] / ref[name]["real_time_ns"]
        rows.append((name, ratio))
        if ratio > REGRESSION_FACTOR:
            regressed.append(name)
    width = max((len(n) for n, _ in rows), default=0)
    print(f"compare vs '{reference.get('label', '?')}' "
          f"(ratio = current/reference real time; > {REGRESSION_FACTOR}x fails)")
    for name, ratio in rows:
        if ratio is None:
            print(f"  {name:<{width}}  (not in reference)")
        else:
            flag = "  << REGRESSION" if ratio > REGRESSION_FACTOR else ""
            print(f"  {name:<{width}}  {ratio:6.3f}x{flag}")
    return regressed


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True, help="path to bench_micro binary")
    ap.add_argument("--out", default="BENCH_micro.json")
    ap.add_argument("--label", default="run")
    ap.add_argument("--min-time", type=float, default=0.1)
    ap.add_argument("--filter", default="", help="benchmark name regex")
    ap.add_argument("--d2sim", default="", help="also wall-clock a d2sim trial")
    ap.add_argument("--baseline", default="",
                    help="previous snapshot to compute speedups against")
    ap.add_argument("--compare", default="",
                    help="snapshot to gate against: print ratio table, exit "
                         f"non-zero on a > {REGRESSION_FACTOR}x regression")
    args = ap.parse_args()

    result = run_benchmarks(args.bench, args.min_time, args.filter)
    result["label"] = args.label
    if args.d2sim:
        result["e2e_d2sim_performance"] = time_d2sim(args.d2sim)
    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        result["baseline_label"] = baseline.get("label", "?")
        result["speedup_vs_baseline"] = speedups(baseline, result)

    with open(args.out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {len(result['benchmarks'])} benchmarks to {args.out}")
    if "speedup_vs_baseline" in result:
        for name, s in sorted(result["speedup_vs_baseline"].items()):
            print(f"  {name}: {s}x")
    if args.compare:
        with open(args.compare) as f:
            reference = json.load(f)
        regressed = compare_report(reference, result)
        if regressed:
            print(f"FAIL: {len(regressed)} benchmark(s) regressed beyond "
                  f"{REGRESSION_FACTOR}x: {', '.join(regressed)}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
