// d2sim — command-line driver for the D2 experiment engines.
//
//   d2sim locality     [--workload=harvard|hp|web] [--node-mb=4]
//   d2sim availability [--scheme=S] [--nodes=N] [--inter=SECS] [--trials=T]
//   d2sim balance      [--workload=harvard|webcache] [--scheme=S] [--nodes=N]
//                      [--no-pointers] [--threshold=T]
//   d2sim performance  [--scheme=S] [--nodes=N] [--kbps=1500] [--para]
//                      [--trials=T]
//   d2sim repair       [--redundancy=repR|rs-K-M] [--nodes=N] [--days=D]
//                      [--blocks-per-node=B] [--block-kb=8] [--repair-bw=KBPS]
//                      [--detect-mins=10] [--retry-mins=5] [--loss-pct=50]
//                      [--write-rate=W] [--mttf-hours=120] [--mttr-hours=4]
//                      [--corr-per-day=N] [--corr-pct=15] [--drain-hours=12]
//   d2sim trace-gen    [--workload=harvard|hp|web] [--out=FILE]
//
// Common options: --users=U --days=D --mb=ACTIVE_MB --seed=X --jobs=N
//                 --accesses=N (mean file accesses per user per day)
//                 --arcs=P (keyspace partitions of the simulation core;
//                 output is byte-identical for any P, see DESIGN.md §9)
//                 --arc-workers=W (threads draining arc lanes; W > 1
//                 parallelizes within each trial with identical output;
//                 capped at hardware concurrency, forced to 1 by
//                 --trace-out)
//                 --scheduler=wheel|heap (event-queue backend: hierarchical
//                 timing wheel, or the binary-heap differential reference;
//                 output is byte-identical either way, see DESIGN.md §11)
//                 --paranoid (full invariant audits after topology changes
//                 and sampled mutations, in any build; slow but catches
//                 state corruption at the mutation that caused it)
// Schemes: d2 (default), traditional, traditional-file, trad+merc
//
// Multi-trial sweeps (availability/performance --trials=T) fan the trials
// across --jobs=N worker threads (default: hardware concurrency) via
// core::TrialRunner. Trial seeds are derived deterministically from
// --seed and the trial index, and results are printed in trial order, so
// --jobs=1 and --jobs=N produce identical output.
//
// Observability (availability, balance, performance):
//   --metrics-out=FILE  write a JSON snapshot of every counter, gauge and
//                       histogram the run touched (see DESIGN.md,
//                       "Observability") after the experiment finishes.
//   --trace-out=FILE    write typed simulation events (lb_move,
//                       replica_fetch, node_down/up, cache_hit/miss,
//                       block_expired) as JSON lines with sim timestamps.
//
// Exit status is non-zero on usage errors, so the tool is scriptable.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/arc_plan.h"

#include "core/availability.h"
#include "core/balance.h"
#include "core/locality_analysis.h"
#include "core/performance.h"
#include "core/repair.h"
#include "core/trial_runner.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "trace/trace_io.h"

using namespace d2;

namespace {

/// Thrown for malformed flag values; main() turns it into usage().
class UsageError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        ok_ = false;
        continue;
      }
      const std::string body = arg.substr(2);
      const auto eq = body.find('=');
      if (eq == std::string::npos) {
        values_[body] = "1";  // boolean flag
      } else {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      }
    }
  }

  bool ok() const { return ok_; }

  std::string str(const std::string& key, const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  long num(const std::string& key, long def) const {
    auto it = values_.find(key);
    if (it == values_.end()) return def;
    const char* s = it->second.c_str();
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "invalid numeric value for --%s: %s\n", key.c_str(),
                   it->second.c_str());
      throw UsageError("bad numeric flag");
    }
    return v;
  }
  bool flag(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: d2sim <locality|availability|balance|performance|repair|"
      "trace-gen> [options]\n"
      "  common: --users=N --days=N --mb=ACTIVE_MB --seed=X --nodes=N\n"
      "          --accesses=N (mean file accesses per user per day)\n"
      "          --jobs=N (worker threads for --trials sweeps; default: all "
      "cores)\n"
      "          --arcs=P --arc-workers=W (partitioned simulation core; "
      "identical output for any P/W)\n"
      "          --scheduler=wheel|heap (event-queue backend; identical "
      "output, wheel is faster)\n"
      "          --paranoid (run full invariant audits during the "
      "simulation)\n"
      "  scheme: --scheme=d2|traditional|traditional-file|trad+merc\n"
      "  see the header of tools/d2sim.cc for per-command options\n");
  return 2;
}

/// Optional observability sinks shared by the experiment commands.
/// Enabled only when the corresponding flag names an output file, so the
/// hot paths stay unmetered by default.
struct Sinks {
  explicit Sinks(const Args& args)
      : metrics_path(args.str("metrics-out", "")),
        trace_path(args.str("trace-out", "")) {}

  obs::Registry* registry() { return metrics_path.empty() ? nullptr : &metrics; }
  obs::Tracer* tracer_ptr() { return trace_path.empty() ? nullptr : &tracer; }

  void write() {
    if (!metrics_path.empty()) {
      metrics.write_json_file(metrics_path);
      std::fprintf(stderr, "wrote %zu metrics to %s\n",
                   metrics.instrument_count(), metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      tracer.write_json_lines_file(trace_path);
      std::fprintf(stderr, "wrote %zu trace events to %s\n", tracer.size(),
                   trace_path.c_str());
    }
  }

  std::string metrics_path;
  std::string trace_path;
  obs::Registry metrics;
  obs::Tracer tracer;
};

trace::HarvardParams harvard_params(const Args& args) {
  trace::HarvardParams p;
  p.users = static_cast<int>(args.num("users", 20));
  p.days = static_cast<int>(args.num("days", 7));
  p.target_active_bytes = mB(args.num("mb", 96));
  p.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  const long accesses = args.num("accesses", 0);
  if (accesses < 0) {
    std::fprintf(stderr, "invalid value for --accesses: %ld (must be > 0)\n",
                 accesses);
    throw UsageError("bad access rate");
  }
  if (accesses > 0) p.accesses_per_user_day = static_cast<double>(accesses);
  return p;
}

/// --arcs: keyspace partitions of the simulation core (DESIGN.md §9).
int arc_count(const Args& args) {
  const long arcs = args.num("arcs", 1);
  if (arcs < 1 || arcs > ArcPlan::kMaxArcs) {
    std::fprintf(stderr, "invalid value for --arcs: %ld (expected 1..%d)\n",
                 arcs, ArcPlan::kMaxArcs);
    throw UsageError("bad arc count");
  }
  return static_cast<int>(arcs);
}

/// --arc-workers: threads draining arc lanes. Rejects non-positive
/// values; silently caps at the hardware concurrency (floored at 2 so
/// `--arc-workers=2` still exercises the parallel engine everywhere).
int arc_workers(const Args& args) {
  const long workers = args.num("arc-workers", 1);
  if (workers < 1) {
    std::fprintf(stderr,
                 "invalid value for --arc-workers: %ld (must be > 0)\n",
                 workers);
    throw UsageError("bad arc worker count");
  }
  const long cap =
      std::max(2L, static_cast<long>(std::thread::hardware_concurrency()));
  return static_cast<int>(std::min(workers, cap));
}

/// --scheduler: event-queue backend. `wheel` (default) is the
/// hierarchical timing wheel; `heap` keeps the binary-heap reference.
/// Output is byte-identical either way.
sim::SchedulerKind scheduler_kind(const Args& args) {
  const std::string name = args.str("scheduler", "wheel");
  if (name == "wheel") return sim::SchedulerKind::kWheel;
  if (name == "heap") return sim::SchedulerKind::kHeap;
  std::fprintf(stderr,
               "invalid value for --scheduler: %s (expected heap|wheel)\n",
               name.c_str());
  throw UsageError("bad scheduler");
}

bool parse_scheme(const std::string& name, fs::KeyScheme* scheme,
                  bool* active_lb) {
  if (name == "d2") {
    *scheme = fs::KeyScheme::kD2;
    *active_lb = true;
  } else if (name == "traditional") {
    *scheme = fs::KeyScheme::kTraditionalBlock;
    *active_lb = false;
  } else if (name == "traditional-file") {
    *scheme = fs::KeyScheme::kTraditionalFile;
    *active_lb = false;
  } else if (name == "trad+merc") {
    *scheme = fs::KeyScheme::kTraditionalBlock;
    *active_lb = true;
  } else {
    std::fprintf(stderr, "unknown scheme: %s\n", name.c_str());
    return false;
  }
  return true;
}

core::SystemConfig system_config(const Args& args) {
  core::SystemConfig c;
  c.node_count = static_cast<int>(args.num("nodes", 64));
  c.replicas = static_cast<int>(args.num("replicas", 3));
  c.seed = static_cast<std::uint64_t>(args.num("seed", 1)) + 1000;
  c.lb_threshold = static_cast<double>(args.num("threshold", 4));
  c.use_pointers = !args.flag("no-pointers");
  c.scatter_replicas = static_cast<int>(args.num("scatter", 0));
  c.paranoid_audits = args.flag("paranoid");
  c.arcs = arc_count(args);
  c.arc_workers = arc_workers(args);
  c.scheduler = scheduler_kind(args);
  if (c.scatter_replicas > 0 && c.arcs > 1) {
    std::fprintf(stderr,
                 "--scatter requires --arcs=1 (hybrid placement couples "
                 "arbitrary keys across the ring)\n");
    throw UsageError("scatter with multiple arcs");
  }
  return c;
}

/// Event tracing records from TTL events, which arc lanes execute; a
/// traced run must stay serial so trace order is reproducible.
void force_serial_for_tracing(const Sinks& sinks, core::SystemConfig* c) {
  if (!sinks.trace_path.empty()) c->arc_workers = 1;
}

int cmd_locality(const Args& args) {
  const std::string workload = args.str("workload", "harvard");
  core::LocalityParams lp;
  lp.node_capacity = mB(args.num("node-mb", 4));
  std::vector<core::BlockAccess> accesses;
  if (workload == "harvard") {
    trace::HarvardGenerator gen(harvard_params(args));
    accesses = core::LocalityAnalysis::from_harvard(gen);
  } else if (workload == "hp") {
    trace::HpParams p;
    p.apps = static_cast<int>(args.num("users", 20));
    p.days = static_cast<int>(args.num("days", 7));
    p.seed = static_cast<std::uint64_t>(args.num("seed", 7));
    trace::HpGenerator gen(p);
    accesses = core::LocalityAnalysis::from_hp(gen);
  } else if (workload == "web") {
    trace::WebParams p;
    p.clients = static_cast<int>(args.num("users", 40));
    p.days = static_cast<int>(args.num("days", 7));
    p.seed = static_cast<std::uint64_t>(args.num("seed", 11));
    trace::WebGenerator gen(p);
    accesses = core::LocalityAnalysis::from_web(gen);
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 2;
  }
  const core::LocalityResult r = core::LocalityAnalysis::analyze(accesses, lp);
  std::printf("workload=%s blocks=%llu nodes=%d user-hours=%llu\n",
              workload.c_str(),
              static_cast<unsigned long long>(r.distinct_blocks), r.nodes,
              static_cast<unsigned long long>(r.user_hours));
  std::printf("nodes/user-hour: traditional=%.2f ordered=%.2f lower-bound=%.2f\n",
              r.traditional_nodes_per_user_hour, r.ordered_nodes_per_user_hour,
              r.lower_bound_nodes_per_user_hour);
  std::printf("normalized: ordered=%.3f lower-bound=%.3f\n",
              r.ordered_normalized(), r.lower_bound_normalized());
  return 0;
}

int cmd_availability(const Args& args) {
  core::AvailabilityParams p;
  p.system = system_config(args);
  if (!parse_scheme(args.str("scheme", "d2"), &p.system.scheme,
                    &p.system.active_load_balance)) {
    return 2;
  }
  p.workload = harvard_params(args);
  p.failure.node_count = p.system.node_count;
  p.failure.duration = days(args.num("days", 7) + 1);
  p.inter = seconds(args.num("inter", 5));
  p.warmup = days(1);
  Sinks sinks(args);
  force_serial_for_tracing(sinks, &p.system);
  p.metrics = sinks.registry();
  const int trials = static_cast<int>(args.num("trials", 1));
  const auto base_seed = static_cast<std::uint64_t>(args.num("seed", 1));
  const core::TrialRunner runner(static_cast<int>(args.num("jobs", 0)));
  // Each trial records into its own tracer; the per-trial tracers are
  // merged in trial order afterwards so --trace-out output does not
  // depend on --jobs.
  std::vector<obs::Tracer> tracers(
      sinks.tracer_ptr() == nullptr ? 0 : static_cast<std::size_t>(trials));
  const std::vector<core::AvailabilityResult> results =
      runner.map<core::AvailabilityResult>(trials, [&](int t) {
        core::AvailabilityParams q = p;
        q.system.seed =
            core::derive_trial_seed(base_seed, static_cast<std::uint64_t>(t));
        if (!tracers.empty()) q.tracer = &tracers[static_cast<std::size_t>(t)];
        return core::AvailabilityExperiment(q).run();
      });
  double sum = 0;
  for (int t = 0; t < trials; ++t) {
    const core::AvailabilityResult& r = results[static_cast<std::size_t>(t)];
    std::printf(
        "trial=%d tasks=%llu failed=%llu unavailability=%.3e nodes/task=%.1f "
        "blocks/task=%.1f\n",
        t, static_cast<unsigned long long>(r.tasks),
        static_cast<unsigned long long>(r.failed_tasks),
        r.task_unavailability(), r.mean_nodes_per_task, r.mean_blocks_per_task);
    sum += r.task_unavailability();
  }
  if (trials > 1) std::printf("mean unavailability=%.3e\n", sum / trials);
  for (const obs::Tracer& tr : tracers) sinks.tracer.append(tr);
  sinks.write();
  return 0;
}

int cmd_balance(const Args& args) {
  core::BalanceParams p;
  p.system = system_config(args);
  if (!parse_scheme(args.str("scheme", "d2"), &p.system.scheme,
                    &p.system.active_load_balance)) {
    return 2;
  }
  const std::string workload = args.str("workload", "harvard");
  if (workload == "harvard") {
    p.workload = core::BalanceWorkload::kHarvard;
    p.harvard = harvard_params(args);
    p.warmup = days(1);
  } else if (workload == "webcache") {
    p.workload = core::BalanceWorkload::kWebcache;
    p.web.clients = static_cast<int>(args.num("users", 40));
    p.web.days = static_cast<int>(args.num("days", 7));
    p.web.seed = static_cast<std::uint64_t>(args.num("seed", 11));
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 2;
  }
  Sinks sinks(args);
  force_serial_for_tracing(sinks, &p.system);
  p.metrics = sinks.registry();
  p.tracer = sinks.tracer_ptr();
  const core::BalanceResult r = core::BalanceExperiment(p).run();
  sinks.write();
  std::printf("mean imbalance=%.3f mean max/mean=%.2f lb-moves=%lld\n",
              r.mean_imbalance(), r.mean_max_over_mean(),
              static_cast<long long>(r.lb_moves));
  std::printf("%-6s %10s %10s %10s %12s\n", "day", "W (MB)", "R (MB)",
              "L (MB)", "T@start (MB)");
  for (std::size_t i = 0; i < r.days.size(); ++i) {
    std::printf("%-6zu %10.1f %10.1f %10.1f %12.1f\n", i,
                static_cast<double>(r.days[i].written) / mB(1),
                static_cast<double>(r.days[i].removed) / mB(1),
                static_cast<double>(r.days[i].migrated) / mB(1),
                static_cast<double>(r.days[i].total_at_start) / mB(1));
  }
  return 0;
}

int cmd_performance(const Args& args) {
  core::PerformanceParams p;
  p.system = system_config(args);
  p.system.replicas = static_cast<int>(args.num("replicas", 4));
  if (!parse_scheme(args.str("scheme", "d2"), &p.system.scheme,
                    &p.system.active_load_balance)) {
    return 2;
  }
  p.workload = harvard_params(args);
  p.workload.days = std::min(p.workload.days, 3);
  p.workload.target_active_bytes = mB(1) * p.system.node_count;
  p.warmup = hours(18);
  p.window_count = static_cast<int>(args.num("windows", 4));
  p.node_bandwidth = kbps(args.num("kbps", 1500));
  p.parallel = args.flag("para");
  Sinks sinks(args);
  force_serial_for_tracing(sinks, &p.system);
  p.metrics = sinks.registry();
  const int trials = static_cast<int>(args.num("trials", 1));
  const auto base_seed = static_cast<std::uint64_t>(args.num("seed", 1));
  const core::TrialRunner runner(static_cast<int>(args.num("jobs", 0)));
  std::vector<obs::Tracer> tracers(
      sinks.tracer_ptr() == nullptr ? 0 : static_cast<std::size_t>(trials));
  const std::vector<core::PerformanceResult> results =
      runner.map<core::PerformanceResult>(trials, [&](int t) {
        core::PerformanceParams q = p;
        // A single trial keeps the historical seed (from system_config);
        // multi-seed sweeps derive one seed per trial.
        if (trials > 1) {
          q.system.seed =
              core::derive_trial_seed(base_seed, static_cast<std::uint64_t>(t));
        }
        if (!tracers.empty()) q.tracer = &tracers[static_cast<std::size_t>(t)];
        return core::PerformanceExperiment(q).run();
      });
  const auto print_result = [](const core::PerformanceResult& r) {
    SimTime total = 0;
    for (const core::GroupResult& g : r.groups) total += g.latency;
    std::printf(
        "groups=%zu mean-latency=%.2fs lookups=%llu msgs/node=%.1f "
        "miss-rate=%.1f%% tcp-cold=%llu/%llu\n",
        r.groups.size(),
        r.groups.empty()
            ? 0.0
            : to_seconds(total) / static_cast<double>(r.groups.size()),
        static_cast<unsigned long long>(r.lookups), r.lookup_messages_per_node,
        100 * r.mean_cache_miss_rate,
        static_cast<unsigned long long>(r.tcp_cold_starts),
        static_cast<unsigned long long>(r.tcp_transfers));
  };
  for (int t = 0; t < trials; ++t) {
    if (trials > 1) std::printf("trial=%d ", t);
    print_result(results[static_cast<std::size_t>(t)]);
  }
  for (const obs::Tracer& tr : tracers) sinks.tracer.append(tr);
  sinks.write();
  return 0;
}

/// --redundancy=repR | rs-K-M (e.g. rep3, rs-6-3).
void parse_redundancy(const std::string& name, core::RepairConfig* cfg) {
  if (name.rfind("rep", 0) == 0) {
    errno = 0;
    char* end = nullptr;
    const long r = std::strtol(name.c_str() + 3, &end, 10);
    if (end == name.c_str() + 3 || *end != '\0' || errno == ERANGE || r < 2) {
      std::fprintf(stderr, "invalid replication scheme: %s\n", name.c_str());
      throw UsageError("bad redundancy");
    }
    cfg->erasure = false;
    cfg->replicas = static_cast<int>(r);
    return;
  }
  if (name.rfind("rs-", 0) == 0) {
    int k = 0;
    int m = 0;
    if (std::sscanf(name.c_str(), "rs-%d-%d", &k, &m) == 2 && k >= 1 &&
        m >= 1 && k + m <= 255) {
      cfg->erasure = true;
      cfg->ec_data_fragments = k;
      cfg->ec_parity_fragments = m;
      return;
    }
  }
  std::fprintf(stderr, "unknown redundancy scheme: %s (want repR or rs-K-M)\n",
               name.c_str());
  throw UsageError("bad redundancy");
}

int cmd_repair(const Args& args) {
  core::DurabilityParams p;
  p.repair.node_count = static_cast<int>(args.num("nodes", 64));
  parse_redundancy(args.str("redundancy", "rep3"), &p.repair);
  p.repair.block_size = kB(args.num("block-kb", 8));
  p.repair.repair_bandwidth = kbps(args.num("repair-bw", 750));
  p.repair.detect_delay = minutes(args.num("detect-mins", 10));
  p.repair.retry_delay = minutes(args.num("retry-mins", 5));
  p.repair.data_loss_fraction =
      static_cast<double>(args.num("loss-pct", 50)) / 100.0;
  if (p.repair.data_loss_fraction < 0.0 || p.repair.data_loss_fraction > 1.0) {
    std::fprintf(stderr, "invalid --loss-pct (expected 0..100)\n");
    throw UsageError("bad loss fraction");
  }
  p.repair.seed = static_cast<std::uint64_t>(args.num("seed", 1)) + 2000;
  p.repair.arcs = arc_count(args);
  p.repair.scheduler = scheduler_kind(args);
  p.arc_workers = arc_workers(args);
  p.blocks_per_node = static_cast<int>(args.num("blocks-per-node", 50));
  p.writes_per_node_per_day = static_cast<double>(args.num("write-rate", 24));
  p.failure.duration = days(args.num("days", 7));
  p.failure.mttf_hours = static_cast<double>(args.num("mttf-hours", 120));
  p.failure.mttr_hours = static_cast<double>(args.num("mttr-hours", 4));
  p.failure.correlated_events_per_day =
      static_cast<double>(args.num("corr-per-day", 1)) * 0.6;
  p.failure.correlated_fraction =
      static_cast<double>(args.num("corr-pct", 15)) / 100.0;
  p.drain = hours(args.num("drain-hours", 12));
  p.failure_seed = static_cast<std::uint64_t>(args.num("seed", 1)) + 42;

  const core::DurabilityResult r = core::run_durability(p);
  const core::RepairStats& s = r.stats;
  std::printf(
      "scheme=%s nodes=%d blocks=%zu days=%ld storage-overhead=%.2fx\n",
      args.str("redundancy", "rep3").c_str(), p.repair.node_count, s.blocks,
      args.num("days", 7),
      static_cast<double>(p.repair.erasure
                              ? p.repair.ec_data_fragments +
                                    p.repair.ec_parity_fragments
                              : p.repair.replicas) /
          static_cast<double>(p.repair.erasure ? p.repair.ec_data_fragments
                                               : 1));
  std::printf(
      "durability: lost=%llu/%zu unrecoverable=%.3e\n",
      static_cast<unsigned long long>(s.blocks_lost), s.blocks,
      r.unrecoverable_fraction);
  std::printf(
      "repair traffic: L=%.1fMB W=%.1fMB L/W=%.3f\n",
      static_cast<double>(s.repair_bytes) / mB(1),
      static_cast<double>(s.user_write_bytes) / mB(1), r.l_over_w);
  std::printf(
      "repairs: started=%llu completed=%llu retries=%llu verified=%llu "
      "failed-writes=%llu\n",
      static_cast<unsigned long long>(s.repairs_started),
      static_cast<unsigned long long>(s.repairs_completed),
      static_cast<unsigned long long>(s.repair_retries),
      static_cast<unsigned long long>(s.verified_reconstructions),
      static_cast<unsigned long long>(s.writes_failed));
  std::printf("mttr: episodes=%zu mean=%.1fs p99=%.1fs open=%zu\n",
              s.mttr_episodes, s.mttr_mean_s, s.mttr_p99_s, s.open_episodes);
  std::printf("events=%llu\n", static_cast<unsigned long long>(r.events));
  return 0;
}

int cmd_trace_gen(const Args& args) {
  const std::string workload = args.str("workload", "harvard");
  const std::string out = args.str("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "trace-gen requires --out=FILE\n");
    return 2;
  }
  // Record paths are views into the generator's arena, so the generator
  // must stay alive until the records are written.
  const auto emit = [&](const std::vector<trace::TraceRecord>& records) {
    trace::write_trace_file(out, records);
    std::printf("wrote %zu records to %s\n", records.size(), out.c_str());
    return 0;
  };
  if (workload == "harvard") {
    trace::HarvardGenerator gen(harvard_params(args));
    return emit(gen.records());
  }
  if (workload == "hp") {
    trace::HpParams p;
    p.apps = static_cast<int>(args.num("users", 20));
    p.days = static_cast<int>(args.num("days", 7));
    trace::HpGenerator gen(p);
    return emit(gen.records());
  }
  if (workload == "web") {
    trace::WebParams p;
    p.clients = static_cast<int>(args.num("users", 40));
    p.days = static_cast<int>(args.num("days", 7));
    trace::WebGenerator gen(p);
    return emit(gen.records());
  }
  std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Args args(argc, argv);
  if (!args.ok()) return usage();
  try {
    if (cmd == "locality") return cmd_locality(args);
    if (cmd == "availability") return cmd_availability(args);
    if (cmd == "balance") return cmd_balance(args);
    if (cmd == "performance") return cmd_performance(args);
    if (cmd == "repair") return cmd_repair(args);
    if (cmd == "trace-gen") return cmd_trace_gen(args);
  } catch (const UsageError&) {
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
