#!/usr/bin/env python3
"""d2_lint — determinism and robustness lint for the D2 simulator sources.

The simulator's headline guarantee is bit-for-bit reproducibility: the same
seed must produce the same experiment output on every platform, at every
parallelism level. Most determinism bugs enter through a handful of C++
idioms, so this linter rejects them mechanically:

  unordered-iter       range-for / iterator loop over a std::unordered_map
                       or std::unordered_set (hash order is
                       platform-dependent).
  unordered-container  declaration of a std::unordered_{map,set} member or
                       local. Keyed lookup is fine, but every declaration
                       must carry an allow() annotation documenting why its
                       iteration order can never leak into results.
  wall-clock           rand()/srand(), std::random_device,
                       std::chrono::{system,steady,high_resolution}_clock,
                       time(), gettimeofday(), clock() — nondeterministic
                       inputs. Use common/rng.h and sim time.
  pointer-key          std::map/std::set keyed on a pointer type: iteration
                       order is allocation order, i.e. nondeterministic.
  std-function         std::function in hot-path subsystems (sim/, store/,
                       dht/): type-erased calls allocate and defeat
                       inlining; these layers take template callables
                       instead (core/ event closures are exempt).
  unguarded-mutator    public-looking mutator defined in a .cc with no
                       D2_REQUIRE / D2_ASSERT / D2_DCHECK / audit in its
                       body — entry points are expected to validate their
                       inputs or state.
  priority-queue       std::priority_queue in src/sim/: the hierarchical
                       timing wheel (sim/timing_wheel.h) is the scheduler
                       hot path; a heap is only legitimate as the
                       differential reference inside event_queue, and that
                       use carries an allow() annotation. Anything else is
                       a scheduler bypass.
  sched-class          a schedule_at/schedule_after/schedule_arc_at/
                       schedule_arc_after call in src/core/*.cc with no
                       `// d2-sched: arc-local|mailbox|global` tag on the
                       line or the line above. Every core timer must be
                       classified (DESIGN.md §12): arc-local events run on
                       the owning arc's queue, mailbox effects cross arcs
                       through staged delivery, and only events that read
                       or mutate state spanning arcs may sit on the global
                       queue (each one is a parallel-window barrier).

Escape hatch: a line (or its predecessor) containing
    // d2-lint: allow(<rule>[, <rule>...])
suppresses those rules for that line; the comment is expected to say *why*
the use is safe. `allow(all)` suppresses every rule.

Arc-ownership checking (the old regex cross-arc-bypass rule) moved to
tools/d2_arc_check.py, which analyzes index expressions semantically for
any member declared sharded with D2_SHARDED_BY_ARC / `// d2-arc:
sharded(...)` instead of pattern-matching a hard-coded member list.

Usage:
    tools/d2_lint.py [--self-test] [paths...]      (default path: src/)
    tools/d2_lint.py --list-allows [paths...]

--list-allows reports every `d2-lint: allow(...)` / `d2-arc: allow(...)`
escape in the tree with its justification, and fails (exit 1) when an
escape states no reason — every suppression must say why it is safe.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage error.
No third-party dependencies; stdlib only.
"""

import argparse
import os
import re
import sys

RULES = (
    "unordered-iter",
    "unordered-container",
    "wall-clock",
    "pointer-key",
    "std-function",
    "unguarded-mutator",
    "priority-queue",
    "sched-class",
)

ALLOW_RE = re.compile(r"//.*d2-lint:\s*allow\(([^)]*)\)")

# Subsystems where std::function is banned (hot paths). core/ schedules
# simulator closures and tools/ are drivers; both legitimately type-erase.
STD_FUNCTION_DIRS = (
    os.sep + "sim" + os.sep,
    os.sep + "store" + os.sep,
    os.sep + "dht" + os.sep,
)

# Mutator-verb prefixes that mark a method as a state-changing entry point.
MUTATOR_VERBS = (
    "insert",
    "erase",
    "remove",
    "add",
    "put",
    "push",
    "pop",
    "commit",
    "cancel",
    "reassign",
    "mark_",
    "attach",
    "move",
)

# Method definition in a .cc file: `Type Class::name(...)` at low indent.
METHOD_DEF_RE = re.compile(
    r"^[A-Za-z_][\w:<>&*,\s]*\b(\w+)::(\w+)\s*\("
)

WALL_CLOCK_PATTERNS = (
    (re.compile(r"\bs?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (
        re.compile(
            r"\bstd::chrono::(system_clock|steady_clock|high_resolution_clock)\b"
        ),
        "std::chrono wall clock",
    ),
    (re.compile(r"(?<![\w.])time\s*\(\s*(NULL|nullptr|0|&)"), "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w.:])clock\s*\(\s*\)"), "clock()"),
)

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(map|set)\s*<")
UNORDERED_ITER_RE = re.compile(
    # range-for over a name that the file declared as an unordered container,
    # matched in a second pass; this regex only finds candidate loops.
    r"\bfor\s*\(.*:\s*(\*?[A-Za-z_]\w*(?:\.\w+|->\w+|_)*)\s*\)"
)
POINTER_KEY_RE = re.compile(r"\bstd::(map|set)\s*<\s*[^,<>]*\*")
STD_FUNCTION_RE = re.compile(r"\bstd::function\s*<")

# Subsystem where a binary heap would bypass the timing-wheel scheduler.
PRIORITY_QUEUE_DIRS = (os.sep + "sim" + os.sep,)
PRIORITY_QUEUE_RE = re.compile(r"\bstd::priority_queue\s*<")

# Scheduler calls in core/ must carry a placement classification so every
# global-queue event (a parallel-window barrier) is a deliberate choice.
SCHED_CALL_DIRS = (os.sep + "core" + os.sep,)
SCHED_CALL_RE = re.compile(r"\bschedule_(?:arc_)?(?:at|after)\s*\(")
SCHED_ANNOT_RE = re.compile(r"//\s*d2-sched:\s*(arc-local|mailbox|global)\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line):
    """Blanks out string/char literals and // comments so patterns cannot
    match inside them. Block comments are handled by the caller's state."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in ('"', "'"):
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowed_rules(raw_line, prev_raw_line):
    """Rules suppressed on this line by an allow() on it or the line above."""
    allowed = set()
    for text in (raw_line, prev_raw_line):
        if text is None:
            continue
        m = ALLOW_RE.search(text)
        if m:
            for rule in m.group(1).split(","):
                allowed.add(rule.strip())
    if "all" in allowed:
        return set(RULES)
    return allowed


def preprocess(lines):
    """Returns code-only lines (strings/comments blanked), tracking block
    comments across lines."""
    code_lines = []
    in_block = False
    for raw in lines:
        line = raw
        if in_block:
            end = line.find("*/")
            if end == -1:
                code_lines.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # Remove any complete /* ... */ spans, then detect an opening one.
        while True:
            start = line.find("/*")
            if start == -1:
                break
            end = line.find("*/", start + 2)
            if end == -1:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        code_lines.append(strip_comments_and_strings(line))
    return code_lines


def unordered_names(code_lines):
    """Names declared in this file as unordered containers (heuristic:
    `std::unordered_xxx<...> name;` or `> name;` on the declaration line)."""
    names = set()
    decl_tail = re.compile(r">\s*(\w+)\s*[;={(]")
    for line in code_lines:
        if UNORDERED_DECL_RE.search(line):
            m = decl_tail.search(line)
            if m:
                names.add(m.group(1))
    return names


def find_body_end(code_lines, start_index):
    """Index one past the closing brace of a body opening at/after
    start_index; None if not found (declaration, macro, etc.)."""
    depth = 0
    opened = False
    for i in range(start_index, min(start_index + 400, len(code_lines))):
        for c in code_lines[i]:
            if c == "{":
                depth += 1
                opened = True
            elif c == "}":
                depth -= 1
                if opened and depth == 0:
                    return i + 1
        if not opened and ";" in code_lines[i]:
            return None  # declaration only
    return None


GUARD_RE = re.compile(
    r"\b(D2_REQUIRE|D2_REQUIRE_MSG|D2_ASSERT|D2_ASSERT_MSG|D2_DCHECK|"
    r"D2_DCHECK_MSG|D2_PARANOID_AUDIT|check_invariants|maybe_audit)\b"
)


def lint_file(path, rules=None):
    rules = set(rules or RULES)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [Finding(path, 0, "io", str(e))]

    code_lines = preprocess(raw_lines)
    findings = []
    u_names = unordered_names(code_lines)

    def allowed(i, rule):
        prev = raw_lines[i - 1] if i > 0 else None
        return rule in allowed_rules(raw_lines[i], prev)

    for i, code in enumerate(code_lines):
        lineno = i + 1

        if "unordered-container" in rules and UNORDERED_DECL_RE.search(code):
            if "#include" not in code and not allowed(i, "unordered-container"):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "unordered-container",
                        "std::unordered_{map,set} declaration needs a "
                        "d2-lint allow() documenting why hash order cannot "
                        "leak into results (or use an ordered container)",
                    )
                )

        if "unordered-iter" in rules and u_names:
            m = UNORDERED_ITER_RE.search(code)
            if m:
                target = m.group(1).lstrip("*")
                base = re.split(r"\.|->", target)[-1]
                if base in u_names and not allowed(i, "unordered-iter"):
                    findings.append(
                        Finding(
                            path,
                            lineno,
                            "unordered-iter",
                            f"iteration over unordered container '{base}' "
                            "visits elements in platform-dependent hash "
                            "order; sort first or use an ordered container",
                        )
                    )

        if "wall-clock" in rules:
            for pattern, what in WALL_CLOCK_PATTERNS:
                if pattern.search(code) and not allowed(i, "wall-clock"):
                    findings.append(
                        Finding(
                            path,
                            lineno,
                            "wall-clock",
                            f"{what} is a nondeterministic input; use "
                            "common/rng.h for randomness and SimTime for "
                            "time",
                        )
                    )

        if "pointer-key" in rules and POINTER_KEY_RE.search(code):
            if not allowed(i, "pointer-key"):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "pointer-key",
                        "ordered container keyed on a pointer iterates in "
                        "allocation order; key on a stable ID instead",
                    )
                )

        if (
            "sched-class" in rules
            and path.endswith(".cc")
            and any(d in path for d in SCHED_CALL_DIRS)
            and SCHED_CALL_RE.search(code)
        ):
            prev_raw = raw_lines[i - 1] if i > 0 else ""
            if not (
                SCHED_ANNOT_RE.search(raw_lines[i])
                or SCHED_ANNOT_RE.search(prev_raw)
            ) and not allowed(i, "sched-class"):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "sched-class",
                        "scheduler call lacks a placement tag; add "
                        "`// d2-sched: arc-local|mailbox|global — <why>` "
                        "on this line or the line above (global-queue "
                        "events are parallel-window barriers and must "
                        "justify themselves)",
                    )
                )

        if (
            "priority-queue" in rules
            and any(d in path for d in PRIORITY_QUEUE_DIRS)
            and PRIORITY_QUEUE_RE.search(code)
        ):
            if not allowed(i, "priority-queue"):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "priority-queue",
                        "std::priority_queue in src/sim/ bypasses the "
                        "timing-wheel scheduler; only event_queue's "
                        "reference heap may use one (annotate with a "
                        "d2-lint allow() saying why)",
                    )
                )

        if (
            "std-function" in rules
            and any(d in path for d in STD_FUNCTION_DIRS)
            and STD_FUNCTION_RE.search(code)
        ):
            if not allowed(i, "std-function"):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "std-function",
                        "std::function in a hot-path subsystem "
                        "(sim/store/dht) allocates and defeats inlining; "
                        "take a template callable",
                    )
                )

    if "unguarded-mutator" in rules and path.endswith(".cc"):
        for i, code in enumerate(code_lines):
            m = METHOD_DEF_RE.match(code)
            if not m:
                continue
            method = m.group(2)
            if not any(
                method == v or method.startswith(v) for v in MUTATOR_VERBS
            ):
                continue
            if method.startswith("add") and not method == "add":
                # Accessor-style helpers (add_user_write_bytes etc.) are
                # internal accounting, not entry points.
                continue
            end = find_body_end(code_lines, i)
            if end is None:
                continue
            body = "\n".join(code_lines[i:end])
            if GUARD_RE.search(body):
                continue
            if allowed(i, "unguarded-mutator"):
                continue
            findings.append(
                Finding(
                    path,
                    i + 1,
                    "unguarded-mutator",
                    f"public mutator '{m.group(1)}::{method}' validates "
                    "nothing; add a D2_REQUIRE/D2_DCHECK precondition or "
                    "annotate why none applies",
                )
            )

    return findings


def collect_files(paths):
    exts = (".cc", ".h")
    files = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(exts):
                files.append(p)
        elif os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(exts):
                        files.append(os.path.join(root, name))
        else:
            print(f"d2_lint: no such path: {p}", file=sys.stderr)
            return None
    return sorted(files)


# --------------------------------------------------------------------------
# Self-test: one fixture per rule that must be flagged, plus allow()ed and
# clean variants that must not be.

SELF_TEST_CASES = [
    # (name, filename, source, expected rule or None)
    (
        "unordered-iter flagged",
        "src/store/x.cc",
        "std::unordered_map<int, int> m_;  // d2-lint: allow(unordered-container)\n"
        "void f() {\n  for (const auto& [k, v] : m_) { use(k, v); }\n}\n",
        "unordered-iter",
    ),
    (
        "unordered-iter allowed",
        "src/store/x.cc",
        "std::unordered_map<int, int> m_;  // d2-lint: allow(unordered-container)\n"
        "void f() {\n"
        "  // d2-lint: allow(unordered-iter) -- sorted downstream\n"
        "  for (const auto& [k, v] : m_) { use(k, v); }\n}\n",
        None,
    ),
    (
        "unordered decl flagged",
        "src/core/x.h",
        "std::unordered_map<int, int> lookup_;\n",
        "unordered-container",
    ),
    (
        "unordered decl allowed",
        "src/core/x.h",
        "// Keyed lookup only.\n"
        "std::unordered_map<int, int> lookup_;  "
        "// d2-lint: allow(unordered-container)\n",
        None,
    ),
    (
        "rand flagged",
        "src/core/x.cc",
        "int f() { return rand() % 6; }\n",
        "wall-clock",
    ),
    (
        "random_device flagged",
        "src/core/x.cc",
        "std::random_device rd;\n",
        "wall-clock",
    ),
    (
        "system_clock flagged",
        "src/core/x.cc",
        "auto t = std::chrono::system_clock::now();\n",
        "wall-clock",
    ),
    (
        "time() flagged",
        "src/core/x.cc",
        "long t = time(NULL);\n",
        "wall-clock",
    ),
    (
        "sim-time names clean",
        "src/core/x.cc",
        "SimTime next_time(int i);\n"
        "// d2-sched: global — fixture\n"
        "void f() { SimTime t = next_time(3); schedule_at(t, cb); }\n",
        None,
    ),
    (
        "pointer-key flagged",
        "src/core/x.h",
        "std::map<Node*, int> rank_;\n",
        "pointer-key",
    ),
    (
        "value-key clean",
        "src/core/x.h",
        "std::map<Key, int> rank_;\n",
        None,
    ),
    (
        "std-function in store flagged",
        "src/store/x.h",
        "std::function<void(int)> cb_;\n",
        "std-function",
    ),
    (
        "std-function in core clean",
        "src/core/x.h",
        "std::function<void(int)> cb_;\n",
        None,
    ),
    (
        "unguarded mutator flagged",
        "src/store/x.cc",
        "void Table::insert(const Key& k, int v) {\n"
        "  data_[k] = v;\n"
        "}\n",
        "unguarded-mutator",
    ),
    (
        "guarded mutator clean",
        "src/store/x.cc",
        "void Table::insert(const Key& k, int v) {\n"
        "  D2_REQUIRE(v >= 0);\n  data_[k] = v;\n}\n",
        None,
    ),
    (
        "priority_queue in sim flagged",
        "src/sim/x.h",
        "std::priority_queue<Entry> heap_;\n",
        "priority-queue",
    ),
    (
        "priority_queue in sim allowed",
        "src/sim/x.h",
        "// d2-lint: allow(priority-queue) -- reference scheduler\n"
        "std::priority_queue<Entry> heap_;\n",
        None,
    ),
    (
        "priority_queue outside sim clean",
        "src/core/x.h",
        "std::priority_queue<Task> backlog_;\n",
        None,
    ),
    (
        "sched-class unannotated flagged",
        "src/core/x.cc",
        "void System::arm() {\n"
        "  sim_.schedule_after(delay, [this] { fire(); });\n"
        "}\n",
        "sched-class",
    ),
    (
        "sched-class arc variant flagged",
        "src/core/x.cc",
        "void System::arm(const Key& k) {\n"
        "  sim_.schedule_arc_at(map_.arc_of(k), t, [this] { fire(); });\n"
        "}\n",
        "sched-class",
    ),
    (
        "sched-class same-line tag clean",
        "src/core/x.cc",
        "void System::arm() {\n"
        "  sim_.schedule_after(delay, cb);  // d2-sched: global — barrier\n"
        "}\n",
        None,
    ),
    (
        "sched-class line-above tag clean",
        "src/core/x.cc",
        "void System::arm(const Key& k) {\n"
        "  // d2-sched: arc-local — timer touches only k's shard\n"
        "  sim_.schedule_arc_at(map_.arc_of(k), t, cb);\n"
        "}\n",
        None,
    ),
    (
        "sched-class outside core clean",
        "src/sim/x.cc",
        "void f() { sim.schedule_after(delay, cb); }\n",
        None,
    ),
    (
        "sched-class header clean",
        "src/core/x.h",
        "void arm() { sim_.schedule_after(delay_, cb_); }\n",
        None,
    ),
    (
        "sched-class allow escape clean",
        "src/core/x.cc",
        "void System::arm() {\n"
        "  // d2-lint: allow(sched-class) -- classified at the call site\n"
        "  sim_.schedule_after(delay, cb);\n"
        "}\n",
        None,
    ),
    (
        "comment mention clean",
        "src/core/x.cc",
        "// An unordered_map here would break: rand() and time() are bad.\n"
        "int x = 0;\n",
        None,
    ),
    (
        "string mention clean",
        "src/core/x.cc",
        'const char* kMsg = "std::random_device and rand() are banned";\n',
        None,
    ),
]


def run_self_test():
    import tempfile

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for name, relpath, source, expected in SELF_TEST_CASES:
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(source)
            findings = lint_file(path)
            rules_found = {f.rule for f in findings}
            if expected is None:
                if findings:
                    print(f"SELF-TEST FAIL [{name}]: expected clean, got "
                          f"{[str(f) for f in findings]}")
                    failures += 1
            else:
                if expected not in rules_found:
                    print(f"SELF-TEST FAIL [{name}]: expected {expected}, "
                          f"got {sorted(rules_found) or 'nothing'}")
                    failures += 1
                extra = rules_found - {expected}
                if extra:
                    print(f"SELF-TEST FAIL [{name}]: unexpected extra "
                          f"findings {sorted(extra)}")
                    failures += 1
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print(f"self-test: {len(SELF_TEST_CASES)} cases passed")
    return 0


# Any lint/arc-check escape marker, with the comment text around it (the
# stated reason lives before or after the marker, or on the line above).
LIST_ALLOW_RE = re.compile(
    r"//(?P<pre>.*?)d2-(?P<kind>lint|arc):\s*allow\((?P<rules>[^)]*)\)"
    r"(?P<post>.*)$"
)
ANY_ALLOW_MARKER_RE = re.compile(r"d2-(?:lint|arc):\s*allow\([^)]*\)")


def list_allows(files):
    """Reports every allow() escape with its justification; an escape
    with no stated reason is a finding (exit 1) — suppressions must say
    why they are safe."""
    entries = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                lines = f.read().splitlines()
        except OSError:
            continue
        for i, line in enumerate(lines):
            m = LIST_ALLOW_RE.search(line)
            if not m:
                continue
            reason = ANY_ALLOW_MARKER_RE.sub(
                " ", m.group("pre") + " " + m.group("post"))
            reason = reason.strip(" \t/-—:;,.")
            if not re.search(r"\w", reason) and i > 0:
                prev = lines[i - 1].strip()
                if prev.startswith("//"):
                    reason = prev.strip(" \t/-—").strip()
            if not re.search(r"\w", reason):
                reason = ""
            entries.append(
                (path, i + 1, m.group("kind"), m.group("rules").strip(),
                 reason))
    missing = 0
    for path, lineno, kind, rules, reason in entries:
        tag = reason if reason else "** NO REASON STATED **"
        print(f"{path}:{lineno}: d2-{kind} allow({rules}) — {tag}")
        if not reason:
            missing += 1
    print(f"d2_lint: {len(entries)} allow escape(s), "
          f"{missing} without a stated reason")
    return 1 if missing else 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Determinism and robustness lint for D2 sources."
    )
    parser.add_argument("paths", nargs="*", default=[], help="files or dirs")
    parser.add_argument(
        "--self-test", action="store_true", help="run embedded fixtures"
    )
    parser.add_argument(
        "--list-allows",
        action="store_true",
        help="report every allow() escape and its justification; fails "
             "when an escape states no reason",
    )
    parser.add_argument(
        "--rules",
        default=",".join(RULES),
        help="comma-separated rule subset to run",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    if args.list_allows:
        files = collect_files(args.paths or ["src"])
        if files is None:
            return 2
        return list_allows(files)

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in RULES]
    if unknown:
        print(f"d2_lint: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    paths = args.paths or ["src"]
    files = collect_files(paths)
    if files is None:
        return 2

    findings = []
    for path in files:
        findings.extend(lint_file(path, rules))
    for f in findings:
        print(f)
    if findings:
        print(f"d2_lint: {len(findings)} finding(s) in {len(files)} file(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
